//! The placement engine: turns a queue of [`JobSpec`]s and a fleet of
//! heterogeneous chips into a deterministic [`SchedulePlan`].
//!
//! Planning runs on a *virtual* timeline (costs proportional to
//! step-by-element work) rather than reacting to wall-clock completion
//! events, which makes the plan a pure function of (queue, fleet,
//! policy, weights): the same inputs always produce the same
//! placements, no matter how many worker threads later execute them or
//! how their real finish times jitter. The executor then follows the
//! plan's per-chip job order exactly (see `scheduler`), so the schedule
//! the user can reason about is the schedule that runs.
//!
//! Three policies:
//!
//! * [`PlacementPolicy::CacheAware`] — the full score: cache affinity
//!   (a chip cohort whose resident compiled program matches the job's
//!   [`JobSpec::program_key`] skips compilation entirely), queue age
//!   (with a deadline urgency multiplier), and capacity balance (small
//!   jobs prefer small chips, keeping big chips open for jobs only
//!   they can host).
//! * [`PlacementPolicy::CacheOblivious`] — the same mechanics and
//!   balance/age terms but affinity weight zero: residency still
//!   *happens* (the executor pools runners either way), the scorer
//!   just never steers toward it. The fleet bench's control arm.
//! * [`PlacementPolicy::RoundRobin`] — strict FIFO with a rotating
//!   first-fit chip pointer, the classic baseline the property tests
//!   require the weighted scorer to beat.
//!
//! Beyond the score, the engine applies one hard *capacity
//! reservation* rule: a fresh (non-hit) candidate is deferred when it
//! would squat on chips some other queued job cannot avoid while this
//! job has a placement disjoint from all of that job's options. That
//! is what keeps a stream of small jobs from starving the one big job
//! that only the 8 GB chip can host.

use pim_sim::{ChipCapacity, ChipConfig};

use crate::job::JobSpec;

/// Which placement scorer drives the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    CacheAware,
    CacheOblivious,
    RoundRobin,
}

impl PlacementPolicy {
    /// Label used in metrics and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::CacheAware => "cache-aware",
            PlacementPolicy::CacheOblivious => "cache-oblivious",
            PlacementPolicy::RoundRobin => "round-robin",
        }
    }
}

/// Weights of the placement score
/// `affinity·hit + age·(t − arrival)·urgency − balance·waste`.
#[derive(Debug, Clone, Copy)]
pub struct ScoreWeights {
    /// Reward for landing on a cohort whose resident program matches.
    pub affinity: f64,
    /// Reward per virtual second of queue wait (starvation guard);
    /// multiplied by [`ScoreWeights::DEADLINE_URGENCY`] for jobs with
    /// deadlines.
    pub age: f64,
    /// Penalty per unit of wasted capacity fraction (idle blocks of
    /// the chosen cohort).
    pub balance: f64,
}

impl ScoreWeights {
    /// Age multiplier for jobs with a deadline.
    pub const DEADLINE_URGENCY: f64 = 100.0;
}

impl Default for ScoreWeights {
    fn default() -> Self {
        // Affinity dominates (a hit saves the whole compile), waste is
        // bounded by 1, and age is a slow tie-breaker over virtual
        // seconds (which are in step·element units, hence the small
        // weight).
        Self { affinity: 4.0, age: 1e-6, balance: 1.0 }
    }
}

/// One placed job in the plan.
#[derive(Debug, Clone)]
pub struct PlannedJob {
    /// Index into the submitted queue.
    pub job: usize,
    /// The chip cohort (fleet indices, ascending).
    pub chips: Vec<usize>,
    /// True when the cohort's resident program matched the job's
    /// program key — the executor reuses the pooled runner and skips
    /// compilation.
    pub cache_hit: bool,
    /// Virtual start time (placement instant).
    pub start: f64,
    /// Virtual finish time.
    pub finish: f64,
    /// True when the estimated finish overruns `arrival + deadline`.
    pub deadline_missed: bool,
}

/// A complete deterministic schedule.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// Placed jobs in placement order. For any chip, the sub-sequence
    /// of jobs using it is its execution order — the executor's
    /// per-chip tickets come straight from this.
    pub jobs: Vec<PlannedJob>,
    /// Jobs no subset of the fleet can host (admission failures).
    pub rejected: Vec<usize>,
    /// Per-chip busy virtual seconds.
    pub busy: Vec<f64>,
    /// Virtual makespan (latest finish).
    pub makespan: f64,
    /// Number of cache-hit placements.
    pub cache_hits: usize,
}

impl SchedulePlan {
    /// The worst chip's idle share of the makespan,
    /// `max_c (1 − busy_c / makespan)` — the load-balance figure of
    /// merit the property tests compare across policies.
    pub fn worst_idle_share(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.busy.iter().map(|&b| 1.0 - b / self.makespan).fold(0.0, f64::max)
    }
}

/// All `k`-subsets of `0..n`, lexicographic.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    if k == 0 || k > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn recurse(
        start: usize,
        n: usize,
        k: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            recurse(i + 1, n, k, current, out);
            current.pop();
        }
    }
    recurse(0, n, k, &mut current, &mut out);
    out
}

/// A compiled program resident on a chip cohort.
struct Resident {
    key: u64,
    cohort: Vec<usize>,
}

/// Shared planner state across both policy branches.
struct Planner<'a> {
    specs: &'a [JobSpec],
    caps: Vec<ChipCapacity>,
    /// Feasible cohorts per job, over the whole fleet, lexicographic.
    feasible: Vec<Vec<Vec<usize>>>,
    free_at: Vec<f64>,
    busy: Vec<f64>,
    residents: Vec<Resident>,
    planned: Vec<PlannedJob>,
}

const EPS: f64 = 1e-9;

impl<'a> Planner<'a> {
    fn new(specs: &'a [JobSpec], chips: &[ChipConfig]) -> Self {
        let caps: Vec<ChipCapacity> = chips.iter().map(|c| c.capacity).collect();
        let feasible = specs
            .iter()
            .map(|spec| {
                combinations(caps.len(), spec.chips_wanted)
                    .into_iter()
                    .filter(|s| spec.fits(&subset_caps(&caps, s)))
                    .collect::<Vec<_>>()
            })
            .collect();
        Self {
            specs,
            caps,
            feasible,
            free_at: vec![0.0; chips.len()],
            busy: vec![0.0; chips.len()],
            residents: Vec::new(),
            planned: Vec::new(),
        }
    }

    fn available(&self, t: f64) -> Vec<usize> {
        (0..self.free_at.len()).filter(|&c| self.free_at[c] <= t + EPS).collect()
    }

    fn is_hit(&self, cohort: &[usize], key: u64) -> bool {
        self.residents.iter().any(|r| r.cohort == cohort && r.key == key)
    }

    /// Fraction of the cohort's blocks the job would leave idle.
    fn waste(&self, job: usize, cohort: &[usize]) -> f64 {
        let caps = subset_caps(&self.caps, cohort);
        let capacity: u64 = caps.iter().map(|c| c.num_blocks()).sum();
        let demand: u64 = self.specs[job].demand_blocks(&caps).map_or(0, |d| d.iter().sum());
        1.0 - demand as f64 / capacity as f64
    }

    /// The capacity-reservation rule: defer fresh candidate `(job,
    /// cohort)` when some other pending job can *only* run through
    /// chips of `cohort` while `job` has an option disjoint from all
    /// of that job's options.
    fn is_deferred(&self, job: usize, cohort: &[usize], pending: &[usize]) -> bool {
        pending.iter().any(|&other| {
            other != job
                && !self.feasible[other].is_empty()
                && self.feasible[other].iter().all(|s| intersects(s, cohort))
                && self.feasible[job]
                    .iter()
                    .any(|mine| self.feasible[other].iter().all(|s| !intersects(s, mine)))
        })
    }

    fn place(&mut self, job: usize, cohort: Vec<usize>, hit: bool, t: f64) {
        let spec = &self.specs[job];
        let compile = if hit { 0.0 } else { spec.est_compile_cost() };
        let dur = compile + spec.est_run_cost();
        let finish = t + dur;
        for &c in &cohort {
            self.free_at[c] = finish;
            self.busy[c] += dur;
        }
        let key = spec.program_key(&subset_caps(&self.caps, &cohort));
        self.residents.retain(|r| !intersects(&r.cohort, &cohort));
        self.residents.push(Resident { key, cohort: cohort.clone() });
        let deadline_missed = spec.deadline.is_some_and(|d| finish > spec.arrival + d);
        self.planned.push(PlannedJob {
            job,
            chips: cohort,
            cache_hit: hit,
            start: t,
            finish,
            deadline_missed,
        });
    }

    fn into_plan(self, rejected: Vec<usize>) -> SchedulePlan {
        let makespan = self.planned.iter().map(|p| p.finish).fold(0.0, f64::max);
        let cache_hits = self.planned.iter().filter(|p| p.cache_hit).count();
        SchedulePlan { jobs: self.planned, rejected, busy: self.busy, makespan, cache_hits }
    }
}

fn subset_caps(caps: &[ChipCapacity], cohort: &[usize]) -> Vec<ChipCapacity> {
    cohort.iter().map(|&c| caps[c]).collect()
}

fn intersects(a: &[usize], b: &[usize]) -> bool {
    a.iter().any(|x| b.contains(x))
}

struct Candidate {
    score: f64,
    job: usize,
    cohort: Vec<usize>,
    hit: bool,
}

/// Keeps `best` if `cand` does not strictly beat it — so ties resolve
/// to the earliest (job, cohort) in iteration order, which is what
/// makes the plan deterministic.
fn take_better(best: &mut Option<Candidate>, cand: Candidate) {
    if best.as_ref().is_none_or(|b| cand.score > b.score + EPS) {
        *best = Some(cand);
    }
}

/// Plans the whole queue. Jobs that fit no subset of the fleet land in
/// [`SchedulePlan::rejected`]; everything else is placed exactly once.
pub fn plan(
    specs: &[JobSpec],
    chips: &[ChipConfig],
    policy: PlacementPolicy,
    weights: &ScoreWeights,
) -> SchedulePlan {
    assert!(!chips.is_empty(), "a fleet needs at least one chip");
    let mut planner = Planner::new(specs, chips);
    let rejected: Vec<usize> =
        (0..specs.len()).filter(|&j| planner.feasible[j].is_empty()).collect();
    let admitted: Vec<usize> =
        (0..specs.len()).filter(|&j| !planner.feasible[j].is_empty()).collect();

    match policy {
        PlacementPolicy::RoundRobin => plan_round_robin(&mut planner, &admitted),
        _ => plan_scored(&mut planner, &admitted, policy, weights),
    }
    planner.into_plan(rejected)
}

/// The scored event loop: at each virtual instant, place the best
/// non-deferred candidate among available chips until none remains,
/// then advance to the next chip-free or arrival event. Deferred
/// candidates are force-placed only when the fleet has gone fully idle
/// with nothing arriving — the livelock escape.
fn plan_scored(
    planner: &mut Planner<'_>,
    admitted: &[usize],
    policy: PlacementPolicy,
    weights: &ScoreWeights,
) {
    let affinity = match policy {
        PlacementPolicy::CacheAware => weights.affinity,
        _ => 0.0,
    };
    let mut pending: Vec<usize> = admitted.to_vec();
    let mut t = 0.0;
    while !pending.is_empty() {
        loop {
            let avail = planner.available(t);
            let arrived: Vec<usize> =
                pending.iter().copied().filter(|&j| planner.specs[j].arrival <= t + EPS).collect();
            let mut best: Option<Candidate> = None;
            let mut best_deferred: Option<Candidate> = None;
            for &j in &arrived {
                let spec = &planner.specs[j];
                let urgency =
                    if spec.deadline.is_some() { ScoreWeights::DEADLINE_URGENCY } else { 1.0 };
                for cohort in &planner.feasible[j] {
                    if !cohort.iter().all(|c| avail.contains(c)) {
                        continue;
                    }
                    let key = spec.program_key(&subset_caps(&planner.caps, cohort));
                    let hit = planner.is_hit(cohort, key);
                    let score = affinity * f64::from(u8::from(hit))
                        + weights.age * (t - spec.arrival) * urgency
                        - weights.balance * planner.waste(j, cohort);
                    let cand = Candidate { score, job: j, cohort: cohort.clone(), hit };
                    if !hit && planner.is_deferred(j, cohort, &arrived) {
                        take_better(&mut best_deferred, cand);
                    } else {
                        take_better(&mut best, cand);
                    }
                }
            }
            let chosen = best.or_else(|| {
                let all_idle = planner.free_at.iter().all(|&f| f <= t + EPS);
                let none_arriving = arrived.len() == pending.len();
                if all_idle && none_arriving {
                    best_deferred.take()
                } else {
                    None
                }
            });
            match chosen {
                Some(c) => {
                    pending.retain(|&j| j != c.job);
                    planner.place(c.job, c.cohort, c.hit, t);
                }
                None => break,
            }
        }
        if pending.is_empty() {
            break;
        }
        let mut next = f64::INFINITY;
        for &f in &planner.free_at {
            if f > t + EPS {
                next = next.min(f);
            }
        }
        for &j in &pending {
            let a = planner.specs[j].arrival;
            if a > t + EPS {
                next = next.min(a);
            }
        }
        assert!(next.is_finite(), "placement stalled: pending jobs but no future events");
        t = next;
    }
}

/// Strict FIFO with a rotating chip pointer: the queue head waits for
/// the first cyclic window of available chips that fits it, blocking
/// everything behind it — the baseline scheduler the weighted scorer
/// must beat.
fn plan_round_robin(planner: &mut Planner<'_>, admitted: &[usize]) {
    let num_chips = planner.caps.len();
    let mut pointer = 0usize;
    let mut t = 0.0f64;
    for &j in admitted {
        let spec = &planner.specs[j];
        let k = spec.chips_wanted;
        t = t.max(spec.arrival);
        loop {
            let avail = planner.available(t);
            // Cyclic availability order from the pointer.
            let mut cyclic: Vec<usize> = avail.clone();
            cyclic.sort_by_key(|&c| (c + num_chips - pointer % num_chips) % num_chips);
            let mut chosen: Option<Vec<usize>> = None;
            if cyclic.len() >= k {
                // First-fit over contiguous windows of the cyclic list,
                // falling back to any lexicographic subset of the
                // available chips (capacity shapes where no contiguous
                // window fits).
                for offset in 0..cyclic.len() {
                    let mut window: Vec<usize> =
                        (0..k).map(|i| cyclic[(offset + i) % cyclic.len()]).collect();
                    window.sort_unstable();
                    window.dedup();
                    if window.len() == k && spec.fits(&subset_caps(&planner.caps, &window)) {
                        chosen = Some(window);
                        break;
                    }
                }
                if chosen.is_none() {
                    chosen = planner.feasible[j]
                        .iter()
                        .find(|s| s.iter().all(|c| avail.contains(c)))
                        .cloned();
                }
            }
            if let Some(cohort) = chosen {
                pointer = (cohort.iter().max().unwrap() + 1) % num_chips;
                let key = spec.program_key(&subset_caps(&planner.caps, &cohort));
                let hit = planner.is_hit(&cohort, key);
                planner.place(j, cohort, hit, t);
                break;
            }
            let mut next = f64::INFINITY;
            for &f in &planner.free_at {
                if f > t + EPS {
                    next = next.min(f);
                }
            }
            assert!(next.is_finite(), "round-robin stalled: job {j} waits on no event");
            t = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Workload;
    use pim_sim::{ChipCapacity, ChipConfig};

    fn fleet(caps: &[ChipCapacity]) -> Vec<ChipConfig> {
        caps.iter().map(|&capacity| ChipConfig { capacity, ..ChipConfig::default_2gb() }).collect()
    }

    #[test]
    fn combinations_are_lexicographic_and_complete() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(combinations(3, 2)[0], vec![0, 1]);
        assert!(combinations(2, 3).is_empty());
    }

    #[test]
    fn infeasible_jobs_are_rejected_not_planned() {
        // A level-5 job (32770 blocks) on a fleet of 2 GB chips has no
        // feasible subset.
        let specs = vec![
            JobSpec::new("big", 5, Workload::PlaneX, 1),
            JobSpec::new("small", 2, Workload::PlaneX, 1),
        ];
        let plan = plan(
            &specs,
            &fleet(&[ChipCapacity::Gb2, ChipCapacity::Gb2]),
            PlacementPolicy::CacheAware,
            &ScoreWeights::default(),
        );
        assert_eq!(plan.rejected, vec![0]);
        assert_eq!(plan.jobs.len(), 1);
        assert_eq!(plan.jobs[0].job, 1);
    }

    #[test]
    fn capacity_reservation_keeps_the_big_chip_for_the_big_job() {
        // Small jobs must not squat on the only chip the level-5 job
        // can use, even though they arrive first in the queue.
        let mut specs = vec![
            JobSpec::new("small-0", 3, Workload::PlaneX, 2),
            JobSpec::new("small-1", 3, Workload::ShearY, 2),
        ];
        specs.push(JobSpec::new("big", 5, Workload::Pulse, 1));
        let plan = plan(
            &specs,
            &fleet(&[ChipCapacity::Gb2, ChipCapacity::Gb8]),
            PlacementPolicy::CacheAware,
            &ScoreWeights::default(),
        );
        let big = plan.jobs.iter().find(|p| p.job == 2).unwrap();
        assert_eq!(big.chips, vec![1]);
        assert_eq!(big.start, 0.0, "big job must start immediately on the reserved 8GB chip");
        for p in plan.jobs.iter().filter(|p| p.job != 2) {
            assert_eq!(p.chips, vec![0], "small jobs stay on the 2GB chip");
        }
    }

    #[test]
    fn repeated_program_keys_become_cache_hits() {
        // Four identical jobs on one chip: first compiles, the rest
        // hit the resident program.
        let specs: Vec<JobSpec> =
            (0..4).map(|i| JobSpec::new(format!("j{i}"), 2, Workload::Pulse, 2)).collect();
        let plan = plan(
            &specs,
            &fleet(&[ChipCapacity::Gb2]),
            PlacementPolicy::CacheAware,
            &ScoreWeights::default(),
        );
        assert_eq!(plan.cache_hits, 3);
        assert!(!plan.jobs[0].cache_hit);
        assert!(plan.jobs[1..].iter().all(|p| p.cache_hit));
    }

    #[test]
    fn deadline_jobs_outrank_older_queue_mates() {
        // Both jobs want the single chip; the deadline job wins the
        // age tie-break through its urgency multiplier once both have
        // waited behind the first placement.
        let mut filler = JobSpec::new("filler", 3, Workload::PlaneX, 4);
        filler.arrival = 0.0;
        let mut relaxed = JobSpec::new("relaxed", 3, Workload::ShearY, 4);
        relaxed.arrival = 1.0;
        let mut urgent = JobSpec::new("urgent", 3, Workload::Pulse, 4);
        urgent.arrival = 2.0;
        urgent.deadline = Some(1e6);
        let specs = vec![filler, relaxed, urgent];
        let plan = plan(
            &specs,
            &fleet(&[ChipCapacity::Gb2]),
            PlacementPolicy::CacheOblivious,
            &ScoreWeights::default(),
        );
        let order: Vec<usize> = plan.jobs.iter().map(|p| p.job).collect();
        assert_eq!(order[0], 0, "filler takes the chip first");
        assert_eq!(order[1], 2, "the deadline job jumps the older relaxed job");
    }
}
