//! The fleet executor: runs a [`SchedulePlan`] concurrently on the
//! worker pool while preserving the plan's per-chip job order exactly.
//!
//! The concurrency model is *plan-then-execute*. Planning already fixed
//! which jobs run on which chips in which order, so execution needs no
//! further scheduling decisions: every planned job knows, for each chip
//! in its cohort, how many earlier planned jobs use that chip (its
//! *ticket*), and simply waits until the chip's completion counter
//! reaches that ticket before starting. Workers pull planned jobs in
//! plan order, so a job's predecessors are always already claimed when
//! it starts waiting — the wait can only be on running work, never on
//! unclaimed work, which makes the spin-wait deadlock-free at any
//! worker count.
//!
//! Job results are deterministic by construction: each job runs on its
//! own [`ClusterRunner`] (fresh, or a pooled one reset to the job's
//! initial state), so its final state is bit-identical to a solo run of
//! the same spec on the same chip cohort no matter what else the fleet
//! executes concurrently.
//!
//! Compiled runners are pooled per chip cohort. A planned cache hit
//! takes the pooled runner (matching program key), resets its dynamic
//! state, and skips the whole compile + preload phase; a fresh
//! placement evicts pooled runners overlapping its cohort — exactly
//! mirroring the planner's residency model, which is what keeps the
//! plan's hit predictions and the executor's reuse counters in
//! agreement.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use pim_cluster::{ClusterConfig, ClusterRunner};
use pim_sim::ChipConfig;
use rayon::prelude::*;
use wavesim_dg::{Acoustic, Solver, State};
use wavesim_mesh::{Boundary, HexMesh};

use crate::job::{JobId, JobSpec, JobState};
use crate::placement::{plan, PlacementPolicy, SchedulePlan, ScoreWeights};

/// Fleet shape and scheduling policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The chips the fleet multiplexes jobs onto.
    pub chips: Vec<ChipConfig>,
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// Placement score weights.
    pub weights: ScoreWeights,
    /// Pool compiled runners for reuse across jobs with matching
    /// program keys (on). Off, every job compiles fresh — the control
    /// arm for measuring what program residency buys.
    pub reuse_runners: bool,
}

impl FleetConfig {
    /// Cache-aware scheduling with default weights and runner reuse.
    pub fn new(chips: Vec<ChipConfig>) -> Self {
        Self {
            chips,
            policy: PlacementPolicy::CacheAware,
            weights: ScoreWeights::default(),
            reuse_runners: true,
        }
    }

    /// Same fleet, different policy.
    pub fn with_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// What happened to one job.
#[derive(Debug)]
pub struct JobOutcome {
    pub id: JobId,
    pub name: String,
    /// Final lifecycle state: `Done` or `Failed`.
    pub state: JobState,
    /// Chip cohort (fleet indices, ascending); empty when rejected.
    pub chips: Vec<usize>,
    /// The cohort's chip configs — everything needed to replay this
    /// job solo on an identical cluster.
    pub chip_configs: Vec<ChipConfig>,
    /// True when the job reused a pooled compiled runner.
    pub cache_hit: bool,
    /// Wall seconds spent waiting for the cohort (ticket wait).
    pub wait_seconds: f64,
    /// Wall seconds building/compiling the runner (0 on a hit).
    pub compile_seconds: f64,
    /// Wall seconds executing the steps.
    pub run_seconds: f64,
    /// Simulated chip seconds the run added.
    pub sim_seconds: f64,
    /// True when the planner flagged the job past its deadline.
    pub deadline_missed: bool,
    /// The final simulation state; `None` for failed jobs.
    pub final_state: Option<State>,
}

impl JobOutcome {
    /// End-to-end wall latency: wait + compile + run.
    pub fn latency_seconds(&self) -> f64 {
        self.wait_seconds + self.compile_seconds + self.run_seconds
    }
}

/// The result of draining the queue.
#[derive(Debug)]
pub struct FleetReport {
    /// One outcome per submitted job, in submit order.
    pub outcomes: Vec<JobOutcome>,
    /// The plan that was executed.
    pub plan: SchedulePlan,
    /// Wall seconds for the whole drain.
    pub wall_seconds: f64,
    /// Completed jobs per wall hour.
    pub jobs_per_hour: f64,
    /// Placements that reused a pooled runner.
    pub cache_hits: usize,
}

/// A compiled runner resident on a chip cohort.
struct PooledRunner {
    program_key: u64,
    runner: ClusterRunner,
}

/// The fleet: submit jobs, then drain the queue through the planner
/// and the concurrent executor.
pub struct Fleet {
    config: FleetConfig,
    queue: Vec<JobSpec>,
}

impl Fleet {
    pub fn new(config: FleetConfig) -> Self {
        assert!(!config.chips.is_empty(), "a fleet needs at least one chip");
        Self { config, queue: Vec::new() }
    }

    /// The fleet's chips.
    pub fn chips(&self) -> &[ChipConfig] {
        &self.config.chips
    }

    /// Enqueues a job; ids are submit order.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.queue.len() as u64);
        if pim_metrics::enabled() {
            let reg = pim_metrics::global();
            reg.counter("fleet_jobs_submitted_total", &[]).inc();
            reg.counter("fleet_job_states_total", &[("state", JobState::Queued.name())]).inc();
            reg.gauge("fleet_queue_depth", &[]).set(self.queue.len() as f64 + 1.0);
        }
        self.queue.push(spec);
        id
    }

    /// Jobs waiting to be drained.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Plans the queued jobs and executes the plan on the worker pool.
    /// Returns per-job outcomes in submit order; the queue is empty
    /// afterwards.
    pub fn drain(&mut self) -> FleetReport {
        let specs = std::mem::take(&mut self.queue);
        let t0 = Instant::now();
        let plan = plan(&specs, &self.config.chips, self.config.policy, &self.config.weights);
        if pim_metrics::enabled() {
            let reg = pim_metrics::global();
            reg.counter("fleet_jobs_rejected_total", &[]).add(plan.rejected.len() as u64);
            reg.gauge("fleet_queue_depth", &[]).set(0.0);
        }

        // Per-chip tickets: job i may start on chip c once c's
        // completion counter reaches the number of earlier planned
        // jobs using c.
        let num_chips = self.config.chips.len();
        let mut used = vec![0usize; num_chips];
        let tickets: Vec<Vec<usize>> = plan
            .jobs
            .iter()
            .map(|pj| {
                pj.chips
                    .iter()
                    .map(|&c| {
                        let ticket = used[c];
                        used[c] += 1;
                        ticket
                    })
                    .collect()
            })
            .collect();

        let progress: Vec<AtomicUsize> = (0..num_chips).map(|_| AtomicUsize::new(0)).collect();
        let pool: Mutex<HashMap<Vec<usize>, PooledRunner>> = Mutex::new(HashMap::new());
        let mut slots: Vec<Option<JobOutcome>> = (0..plan.jobs.len()).map(|_| None).collect();
        {
            let (specs, plan, tickets, progress, pool, config) =
                (&specs, &plan, &tickets, &progress, &pool, &self.config);
            slots.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
                slot[0] = Some(run_planned_job(i, specs, plan, tickets, progress, pool, config));
            });
        }

        // Reassemble in submit order, filling rejected jobs in.
        let mut outcomes: Vec<Option<JobOutcome>> = (0..specs.len()).map(|_| None).collect();
        for (pj, outcome) in plan.jobs.iter().zip(slots) {
            outcomes[pj.job] = outcome;
        }
        for &j in &plan.rejected {
            record_state_transition(JobState::Failed);
            outcomes[j] = Some(JobOutcome {
                id: JobId(j as u64),
                name: specs[j].name.clone(),
                state: JobState::Failed,
                chips: Vec::new(),
                chip_configs: Vec::new(),
                cache_hit: false,
                wait_seconds: 0.0,
                compile_seconds: 0.0,
                run_seconds: 0.0,
                sim_seconds: 0.0,
                deadline_missed: false,
                final_state: None,
            });
        }
        let outcomes: Vec<JobOutcome> = outcomes.into_iter().map(Option::unwrap).collect();

        let wall_seconds = t0.elapsed().as_secs_f64();
        let done = outcomes.iter().filter(|o| o.state == JobState::Done).count();
        let jobs_per_hour =
            if wall_seconds > 0.0 { done as f64 * 3600.0 / wall_seconds } else { 0.0 };
        let cache_hits = outcomes.iter().filter(|o| o.cache_hit).count();
        if pim_metrics::enabled() {
            let reg = pim_metrics::global();
            reg.gauge("fleet_jobs_per_hour", &[("policy", self.config.policy.name())])
                .set(jobs_per_hour);
        }
        FleetReport { outcomes, plan, wall_seconds, jobs_per_hour, cache_hits }
    }
}

fn record_state_transition(state: JobState) {
    if pim_metrics::enabled() {
        pim_metrics::global().counter("fleet_job_states_total", &[("state", state.name())]).inc();
    }
}

/// Executes planned job `i`: ticket wait → runner acquisition (pooled
/// or fresh) → run → pool hand-back → progress bump.
fn run_planned_job(
    i: usize,
    specs: &[JobSpec],
    plan: &SchedulePlan,
    tickets: &[Vec<usize>],
    progress: &[AtomicUsize],
    pool: &Mutex<HashMap<Vec<usize>, PooledRunner>>,
    config: &FleetConfig,
) -> JobOutcome {
    let pj = &plan.jobs[i];
    let spec = &specs[pj.job];
    record_state_transition(JobState::Placing);

    // Wait for the cohort: every chip must have completed exactly the
    // planned predecessors. Predecessors are earlier in plan order and
    // workers claim jobs in order, so this wait is always on running
    // (never unclaimed) work.
    let t_wait = Instant::now();
    for (&c, &ticket) in pj.chips.iter().zip(&tickets[i]) {
        while progress[c].load(Ordering::Acquire) < ticket {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    let wait_seconds = t_wait.elapsed().as_secs_f64();

    // The job's mesh and initial state (data only — programs are a
    // function of the spec's program key, not of the workload).
    let mesh = HexMesh::refinement_level(spec.level, Boundary::Periodic);
    let mut solver =
        Solver::<Acoustic>::uniform(mesh.clone(), spec.order, spec.flux, spec.material);
    solver.set_initial(|v, x| spec.workload.value(v, x));
    let initial = solver.state().clone();

    let chip_configs: Vec<ChipConfig> = pj.chips.iter().map(|&c| config.chips[c]).collect();
    let caps: Vec<_> = chip_configs.iter().map(|c| c.capacity).collect();
    let key = spec.program_key(&caps);

    record_state_transition(JobState::Compiling);
    let t_compile = Instant::now();
    let pooled = if config.reuse_runners {
        let mut pool = pool.lock().unwrap();
        match pool.remove(&pj.chips) {
            Some(p) if p.program_key == key => Some(p),
            Some(stale) => {
                // Wrong program resident on this cohort: put it back so
                // the eviction below accounts for it uniformly.
                pool.insert(pj.chips.clone(), stale);
                None
            }
            None => None,
        }
    } else {
        None
    };
    let cache_hit = pooled.is_some();
    // The executor's reuse decision must mirror the planner's residency
    // model — that agreement is what the plan's hit count promises.
    debug_assert_eq!(
        cache_hit,
        pj.cache_hit && config.reuse_runners,
        "job {}: executor reuse diverged from the plan",
        spec.name
    );
    let mut runner = match pooled {
        Some(p) => {
            let mut runner = p.runner;
            runner.reset_state(&initial);
            runner
        }
        None => {
            // A fresh program lands on these chips: runners overlapping
            // the cohort no longer describe what is resident.
            pool.lock().unwrap().retain(|cohort, _| cohort.iter().all(|c| !pj.chips.contains(c)));
            let cluster = ClusterConfig::heterogeneous(chip_configs.clone());
            ClusterRunner::new(
                &mesh,
                spec.order,
                spec.flux,
                spec.material,
                &initial,
                spec.dt,
                cluster,
            )
        }
    };
    let compile_seconds = if cache_hit { 0.0 } else { t_compile.elapsed().as_secs_f64() };

    record_state_transition(JobState::Running);
    let t_run = Instant::now();
    let sim_before = runner.elapsed();
    runner.run(spec.steps);
    let final_state = runner.state();
    let sim_seconds = runner.elapsed() - sim_before;
    let run_seconds = t_run.elapsed().as_secs_f64();

    // Hand the runner back *before* releasing the cohort, so the next
    // job on these chips sees the pooled program.
    if config.reuse_runners {
        pool.lock().unwrap().insert(pj.chips.clone(), PooledRunner { program_key: key, runner });
    }
    for &c in &pj.chips {
        progress[c].fetch_add(1, Ordering::Release);
    }

    record_state_transition(JobState::Done);
    if pim_metrics::enabled() {
        let reg = pim_metrics::global();
        let outcome = if cache_hit { "cache_hit" } else { "fresh" };
        reg.counter("fleet_placements_total", &[("outcome", outcome)]).inc();
        reg.float_counter("fleet_job_wait_seconds", &[("job", &spec.name)]).add(wait_seconds);
        reg.float_counter("fleet_job_compile_seconds", &[("job", &spec.name)]).add(compile_seconds);
        reg.float_counter("fleet_job_run_seconds", &[("job", &spec.name)]).add(run_seconds);
        if pj.deadline_missed {
            reg.counter("fleet_deadline_misses_total", &[]).inc();
        }
    }

    JobOutcome {
        id: JobId(pj.job as u64),
        name: spec.name.clone(),
        state: JobState::Done,
        chips: pj.chips.clone(),
        chip_configs,
        cache_hit,
        wait_seconds,
        compile_seconds,
        run_seconds,
        sim_seconds,
        deadline_missed: pj.deadline_missed,
        final_state: Some(final_state),
    }
}
