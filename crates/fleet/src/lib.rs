//! # pim-fleet — simulation-as-a-service on a heterogeneous chip fleet
//!
//! The Wave-PIM stack below this crate runs *one* simulation well: the
//! compiler maps a mesh onto chips, the cluster runtime shards it, the
//! program cache makes replay cheap. This crate adds the layer a
//! facility actually operates: many independent simulation jobs —
//! mixed mesh levels, workloads, step budgets, optional deadlines —
//! multiplexed onto a fixed fleet of heterogeneous simulated PIM chips.
//!
//! The moving parts:
//!
//! * [`job`] — the [`job::JobSpec`] model: lifecycle states, a
//!   closed-form per-chip block-demand model mirroring the weighted
//!   slice deal, and the program/replay content keys that make cache
//!   affinity sound.
//! * [`placement`] — the deterministic placement engine: a virtual
//!   timeline, a score trading cache affinity against capacity balance
//!   and queue age, a capacity-reservation rule protecting big jobs,
//!   and a round-robin baseline to beat.
//! * [`scheduler`] — the [`scheduler::Fleet`] executor: plan-then-
//!   execute on the worker pool, with per-chip tickets serializing
//!   chip access, a pooled-runner program cache, and per-job results
//!   bit-identical to solo runs.
//!
//! Observability rides on `pim-metrics`: queue depth, admission and
//! placement outcomes, per-job wait/compile/run seconds, cache-hit
//! placements, jobs per hour — scrapeable live via
//! `pim_metrics::http::serve`.

pub mod job;
pub mod placement;
pub mod scheduler;

pub use job::{JobId, JobSpec, JobState, Workload};
pub use placement::{plan, PlacementPolicy, PlannedJob, SchedulePlan, ScoreWeights};
pub use scheduler::{Fleet, FleetConfig, FleetReport, JobOutcome};
