//! The fleet's unit of work: one independent acoustic simulation with a
//! resource ask (`chips_wanted`), a step budget, and an optional
//! deadline.
//!
//! Everything the placement engine needs to reason about a job without
//! building it — block demand per chip, feasibility on a chip subset,
//! the compile/replay content keys, virtual cost estimates — lives here
//! as closed-form arithmetic over the spec. The demand model mirrors
//! [`wavesim_mesh::SlicePartition::new_weighted`]'s largest-remainder
//! slice deal exactly for residents and bounds ghosts from above, so a
//! subset the planner accepts always fits the real
//! [`pim_cluster::ClusterRunner`] shard map.

use pim_sim::ChipCapacity;
use wavesim_dg::{AcousticMaterial, FluxKind};
use wavesim_numerics::Vec3;

/// Fleet-assigned job identity (the submit order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Job lifecycle. `Queued → Placing → Compiling → Running → Done`, with
/// `Failed` reachable from admission (no chip subset of the fleet fits)
/// or execution. A cache-hit placement still passes through `Compiling`
/// — it just spends ~0 seconds there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Placing,
    Compiling,
    Running,
    Done,
    Failed,
}

impl JobState {
    /// Label used for metrics and reports.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Placing => "placing",
            JobState::Compiling => "compiling",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// The acoustic initial condition a job starts from. Workloads only
/// change *data*, never compiled programs, so two jobs differing only
/// in workload can share a resident program (see
/// [`JobSpec::program_key`] vs [`JobSpec::replay_key`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A plane pressure wave along x.
    PlaneX,
    /// A velocity shear along y.
    ShearY,
    /// A smooth periodic pressure pulse.
    Pulse,
    /// Mixed tones across all four acoustic variables.
    MixedTones,
}

impl Workload {
    /// All workloads, in key order.
    pub const ALL: [Workload; 4] =
        [Workload::PlaneX, Workload::ShearY, Workload::Pulse, Workload::MixedTones];

    /// Name used in job labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            Workload::PlaneX => "plane-x",
            Workload::ShearY => "shear-y",
            Workload::Pulse => "pulse",
            Workload::MixedTones => "mixed-tones",
        }
    }

    /// The initial value of acoustic variable `var` (0 = pressure,
    /// 1..=3 = velocity) at position `x` — smooth and periodic on the
    /// unit cube, so any mesh level resolves it.
    pub fn value(self, var: usize, x: Vec3) -> f64 {
        let tau = std::f64::consts::TAU;
        match self {
            Workload::PlaneX => match var {
                0 => (tau * x.x).sin(),
                1 => (tau * x.x).sin(),
                _ => 0.0,
            },
            Workload::ShearY => match var {
                1 => 0.5 * (tau * x.y).cos(),
                3 => 0.25 * (tau * x.y).sin(),
                _ => 0.0,
            },
            Workload::Pulse => match var {
                0 => (tau * x.x).sin() * (tau * x.y).sin() * (tau * x.z).sin(),
                _ => 0.0,
            },
            Workload::MixedTones => match var {
                0 => (tau * x.x).sin() + 0.25 * (tau * x.y).cos(),
                1 => 0.5 * (tau * x.y).sin(),
                2 => 0.25 * (tau * (x.x + x.z)).cos(),
                _ => 0.125 * (tau * x.z).sin(),
            },
        }
    }

    fn tag(self) -> u64 {
        match self {
            Workload::PlaneX => 0,
            Workload::ShearY => 1,
            Workload::Pulse => 2,
            Workload::MixedTones => 3,
        }
    }
}

/// One simulation job as submitted to the fleet.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label (metrics / reports); need not be unique.
    pub name: String,
    /// Mesh refinement level: `8^level` elements, `2^level` y-slices.
    pub level: u32,
    /// Polynomial order per element.
    pub order: usize,
    /// Numerical flux.
    pub flux: FluxKind,
    /// Homogeneous acoustic material.
    pub material: AcousticMaterial,
    /// Initial condition.
    pub workload: Workload,
    /// Time steps to advance.
    pub steps: usize,
    /// Time-step size.
    pub dt: f64,
    /// How many chips the job wants to shard across.
    pub chips_wanted: usize,
    /// Virtual arrival time (seconds on the planner's timeline).
    pub arrival: f64,
    /// Optional deadline, virtual seconds after `arrival`. Deadline
    /// jobs age faster in the placement score and late finishes are
    /// flagged, not dropped.
    pub deadline: Option<f64>,
}

impl JobSpec {
    /// A small default job: level-2 mesh, order 2, Riemann flux, one
    /// chip, immediate arrival.
    pub fn new(name: impl Into<String>, level: u32, workload: Workload, steps: usize) -> Self {
        Self {
            name: name.into(),
            level,
            order: 2,
            flux: FluxKind::Riemann,
            material: AcousticMaterial::new(2.0, 1.0),
            workload,
            steps,
            dt: 1e-3,
            chips_wanted: 1,
            arrival: 0.0,
            deadline: None,
        }
    }

    /// `8^level` mesh elements.
    pub fn num_elements(&self) -> usize {
        1usize << (3 * self.level)
    }

    /// `2^level` y-slices — the upper bound on `chips_wanted`.
    pub fn num_slices(&self) -> usize {
        1usize << self.level
    }

    /// `4^level` elements per y-slice.
    pub fn elements_per_slice(&self) -> usize {
        1usize << (2 * self.level)
    }

    /// The largest-remainder slice deal over `weights`, mirroring
    /// [`wavesim_mesh::SlicePartition::new_weighted`] exactly: every
    /// shard gets one slice, the rest go by `extra·w/W` with remainders
    /// broken toward lower index.
    ///
    /// # Panics
    /// Panics if `weights` is empty or longer than the slice count.
    pub fn slice_deal(&self, weights: &[u64]) -> Vec<usize> {
        let slices = self.num_slices();
        assert!(!weights.is_empty() && weights.len() <= slices);
        let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
        let extra = (slices - weights.len()) as u128;
        let mut counts: Vec<usize> = Vec::with_capacity(weights.len());
        let mut remainders: Vec<(usize, u128)> = Vec::with_capacity(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            let scaled = extra * u128::from(w);
            counts.push(1 + (scaled / total) as usize);
            remainders.push((i, scaled % total));
        }
        let dealt: usize = counts.iter().sum();
        remainders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(shard, _) in remainders.iter().take(slices - dealt) {
            counts[shard] += 1;
        }
        counts
    }

    /// Per-chip block demand when sharded over chips of the given
    /// capacities: residents (one block per element, exact mirror of
    /// the weighted deal) + ghosts (bounded above by the two boundary
    /// layers) + the parking and LUT blocks. The bound is conservative
    /// in the safe direction — a subset this model accepts always fits
    /// the real shard map.
    ///
    /// Returns `None` when the subset cannot host the job at all:
    /// wrong chip count or more chips than slices.
    pub fn demand_blocks(&self, caps: &[ChipCapacity]) -> Option<Vec<u64>> {
        if caps.len() != self.chips_wanted || caps.len() > self.num_slices() {
            return None;
        }
        let weights: Vec<u64> = caps.iter().map(|c| c.num_blocks()).collect();
        let counts = self.slice_deal(&weights);
        let per_slice = self.elements_per_slice() as u64;
        let ghosts = if caps.len() > 1 { 2 * per_slice } else { 0 };
        Some(counts.iter().map(|&n| n as u64 * per_slice + ghosts + 2).collect())
    }

    /// True when the job fits the given chip subset under the
    /// conservative demand model.
    pub fn fits(&self, caps: &[ChipCapacity]) -> bool {
        match self.demand_blocks(caps) {
            Some(demand) => demand.iter().zip(caps).all(|(&d, c)| d <= c.num_blocks()),
            None => false,
        }
    }

    /// The *program* content key: hashes every input that determines
    /// the compiled [`pim_cluster::ClusterRunner`] instruction streams
    /// — mesh level, order, flux, material, dt, and the capacity
    /// sequence of the hosting chips (capacities drive the weighted
    /// partition, which changes every shard's programs). Two jobs with
    /// equal program keys on the same chip subset compile to runners
    /// with equal [`pim_cluster::ClusterRunner::program_content_key`],
    /// which is what makes a cache-affinity hit sound: the resident
    /// program replays byte-identically for the new job.
    pub fn program_key(&self, caps: &[ChipCapacity]) -> u64 {
        let mut h = pim_isa::FNV_OFFSET;
        h = pim_isa::fnv1a(h, u64::from(self.level));
        h = pim_isa::fnv1a(h, self.order as u64);
        h = pim_isa::fnv1a(
            h,
            match self.flux {
                FluxKind::Central => 0,
                FluxKind::Riemann => 1,
            },
        );
        h = pim_isa::fnv1a(h, self.material.kappa.to_bits());
        h = pim_isa::fnv1a(h, self.material.rho.to_bits());
        h = pim_isa::fnv1a(h, self.dt.to_bits());
        for cap in caps {
            h = pim_isa::fnv1a(h, cap.num_blocks());
        }
        h
    }

    /// The *replay* content key: the program key plus everything else
    /// that determines the final state — workload and step count. Two
    /// jobs with equal replay keys on the same chip subset produce
    /// byte-identical final states.
    pub fn replay_key(&self, caps: &[ChipCapacity]) -> u64 {
        let mut h = self.program_key(caps);
        h = pim_isa::fnv1a(h, self.workload.tag());
        h = pim_isa::fnv1a(h, self.steps as u64);
        h
    }

    /// Virtual run cost for the planner's timeline: work is
    /// step-by-element, and the constant cancels in every comparison
    /// the planner makes.
    pub fn est_run_cost(&self) -> f64 {
        self.steps as f64 * self.num_elements() as f64
    }

    /// Virtual compile cost: program compilation is per-element host
    /// work, a fraction of a step sweep.
    pub fn est_compile_cost(&self) -> f64 {
        0.25 * self.num_elements() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_mesh::{Boundary, HexMesh, SlicePartition};

    #[test]
    fn slice_deal_mirrors_the_weighted_partition() {
        // The demand model must agree with the real partitioner on the
        // resident counts for every shape the fleet places.
        for (level, weights) in [
            (3u32, vec![16384u64, 65536]),
            (3, vec![1, 1, 1]),
            (2, vec![16384, 16384]),
            (3, vec![65536, 16384, 16384]),
            (2, vec![7]),
        ] {
            let spec = JobSpec::new("t", level, Workload::Pulse, 1);
            let counts = spec.slice_deal(&weights);
            let mesh = HexMesh::refinement_level(level, Boundary::Periodic);
            let p = SlicePartition::new_weighted(&mesh, &weights);
            let real: Vec<usize> = p.shards().iter().map(|s| s.slice_end - s.slice_begin).collect();
            assert_eq!(counts, real, "level {level} weights {weights:?}");
        }
    }

    #[test]
    fn demand_never_underestimates_the_real_shard_map() {
        // Ghost bound is from above: real ghosts per shard are at most
        // the two boundary layers the model charges.
        let spec = {
            let mut s = JobSpec::new("t", 3, Workload::Pulse, 1);
            s.chips_wanted = 2;
            s
        };
        let caps = [ChipCapacity::Gb2, ChipCapacity::Gb8];
        let demand = spec.demand_blocks(&caps).unwrap();
        let mesh = HexMesh::refinement_level(3, Boundary::Periodic);
        let weights: Vec<u64> = caps.iter().map(|c| c.num_blocks()).collect();
        let p = SlicePartition::new_weighted(&mesh, &weights);
        for (shard, &d) in p.shards().iter().zip(&demand) {
            let actual = shard.elements.len() as u64 + shard.ghosts.len() as u64 + 2;
            assert!(actual <= d, "shard {}: actual {actual} > modeled {d}", shard.index);
        }
    }

    #[test]
    fn feasibility_follows_block_capacity() {
        // Level 5 solo needs 8^5 + 2 = 32770 blocks: over a 2 GB chip
        // (16384), within an 8 GB one (65536).
        let spec = JobSpec::new("big", 5, Workload::PlaneX, 1);
        assert!(!spec.fits(&[ChipCapacity::Gb2]));
        assert!(spec.fits(&[ChipCapacity::Gb8]));
        // More chips than slices can never host the job.
        let mut narrow = JobSpec::new("narrow", 1, Workload::PlaneX, 1);
        narrow.chips_wanted = 4;
        assert!(!narrow.fits(&[ChipCapacity::Gb8; 4]));
    }

    #[test]
    fn keys_separate_programs_from_replays() {
        let caps = [ChipCapacity::Gb2];
        let a = JobSpec::new("a", 2, Workload::PlaneX, 4);
        let mut b = a.clone();
        b.name = "b".into();
        b.workload = Workload::Pulse;
        // Same program (level/order/flux/material/dt/chips), different
        // replay (workload differs).
        assert_eq!(a.program_key(&caps), b.program_key(&caps));
        assert_ne!(a.replay_key(&caps), b.replay_key(&caps));
        // Capacity sequence is part of the program: the weighted deal
        // changes shard programs.
        assert_ne!(a.program_key(&caps), a.program_key(&[ChipCapacity::Gb8]));
        // dt is part of the program (integration constants).
        let mut c = a.clone();
        c.dt = 2e-3;
        assert_ne!(a.program_key(&caps), c.program_key(&caps));
    }
}
