//! Property tests for the placement engine. Three contracts:
//!
//! * **Capacity**: no planned placement ever exceeds any chip's block
//!   capacity under the demand model, no two jobs overlap in time on
//!   the same chip, and rejected jobs are exactly the infeasible ones.
//! * **Determinism**: the plan is a pure function of (queue, fleet,
//!   policy, weights) — replanning the same inputs reproduces every
//!   placement bit-for-bit.
//! * **Quality**: on a mixed 2 GB + 8 GB fleet the weighted scorer
//!   strictly beats the round-robin baseline on the worst chip's idle
//!   share of the makespan.

use pim_fleet::{plan, JobSpec, PlacementPolicy, ScoreWeights, Workload};
use pim_sim::{ChipCapacity, ChipConfig};
use proptest::collection::vec;
use proptest::prelude::*;

fn fleet(caps: &[ChipCapacity]) -> Vec<ChipConfig> {
    caps.iter().map(|&capacity| ChipConfig { capacity, ..ChipConfig::default_2gb() }).collect()
}

/// A random job: mixed levels (including level 5, which only an 8 GB
/// chip can host solo), workloads, step budgets, chip asks, arrivals,
/// and the occasional deadline.
fn jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    let job = (0usize..5, 0usize..4, 1usize..6, 0usize..3, 0u64..3, 0usize..4).prop_map(
        |(shape, workload, steps, chips, arrival, deadline)| {
            let (level, chips_wanted) = match shape {
                0 => (2, 1),
                1 => (2, chips + 1),
                2 => (3, 1),
                3 => (3, chips + 1),
                _ => (5, 1),
            };
            let mut spec = JobSpec::new(
                format!("p{shape}-{workload}-{steps}"),
                level,
                Workload::ALL[workload],
                steps,
            );
            spec.chips_wanted = chips_wanted;
            spec.arrival = arrival as f64 * 100.0;
            spec.deadline = (deadline == 0).then_some(1e7);
            spec
        },
    );
    vec(job, 1..10)
}

fn policies() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::CacheAware),
        Just(PlacementPolicy::CacheOblivious),
        Just(PlacementPolicy::RoundRobin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn placements_respect_capacity_and_exclusivity(case in (jobs(), policies())) {
        let (specs, policy) = case;
        let chips = fleet(&[
            ChipCapacity::Gb2,
            ChipCapacity::Gb8,
            ChipCapacity::Gb2,
            ChipCapacity::Gb16,
        ]);
        let p = plan(&specs, &chips, policy, &ScoreWeights::default());

        // Every job is placed once or rejected once.
        let mut seen = vec![0usize; specs.len()];
        for pj in &p.jobs {
            seen[pj.job] += 1;
        }
        for &j in &p.rejected {
            seen[j] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "jobs placed/rejected != once: {seen:?}");

        for pj in &p.jobs {
            let spec = &specs[pj.job];
            // Cohort shape: right size, sorted, in range.
            prop_assert_eq!(pj.chips.len(), spec.chips_wanted);
            prop_assert!(pj.chips.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(pj.chips.iter().all(|&c| c < chips.len()));
            // Block demand fits every chip of the cohort.
            let caps: Vec<ChipCapacity> =
                pj.chips.iter().map(|&c| chips[c].capacity).collect();
            let demand = spec.demand_blocks(&caps).expect("planned job must be feasible");
            for (&d, cap) in demand.iter().zip(&caps) {
                prop_assert!(
                    d <= cap.num_blocks(),
                    "job {} demands {d} blocks of a {}-block chip",
                    spec.name,
                    cap.num_blocks()
                );
            }
            // Jobs never start before they arrive.
            prop_assert!(pj.start >= spec.arrival - 1e-9);
        }

        // Temporal exclusivity: each chip runs at most one job at a time.
        for c in 0..chips.len() {
            let mut windows: Vec<(f64, f64)> = p
                .jobs
                .iter()
                .filter(|pj| pj.chips.contains(&c))
                .map(|pj| (pj.start, pj.finish))
                .collect();
            windows.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in windows.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0 + 1e-9,
                    "chip {c} double-booked: {:?} overlaps {:?}",
                    w[0],
                    w[1]
                );
            }
        }

        // Rejected = infeasible on the whole fleet.
        for &j in &p.rejected {
            let all_caps: Vec<ChipCapacity> = chips.iter().map(|c| c.capacity).collect();
            prop_assert!(
                !subsets_of(&all_caps, specs[j].chips_wanted)
                    .iter()
                    .any(|s| specs[j].fits(s)),
                "rejected job {} has a feasible subset",
                specs[j].name
            );
        }
    }

    #[test]
    fn plans_are_deterministic(case in (jobs(), policies())) {
        let (specs, policy) = case;
        let chips = fleet(&[ChipCapacity::Gb2, ChipCapacity::Gb8, ChipCapacity::Gb2]);
        let a = plan(&specs, &chips, policy, &ScoreWeights::default());
        let b = plan(&specs, &chips, policy, &ScoreWeights::default());
        prop_assert_eq!(a.jobs.len(), b.jobs.len());
        prop_assert_eq!(&a.rejected, &b.rejected);
        prop_assert_eq!(a.cache_hits, b.cache_hits);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            prop_assert_eq!(x.job, y.job);
            prop_assert_eq!(&x.chips, &y.chips);
            prop_assert_eq!(x.cache_hit, y.cache_hit);
            prop_assert_eq!(x.start.to_bits(), y.start.to_bits());
            prop_assert_eq!(x.finish.to_bits(), y.finish.to_bits());
        }
    }

    #[test]
    fn weighted_scorer_beats_round_robin_on_worst_chip_idle(case in (2usize..6, 2usize..4)) {
        // k small level-3 jobs ahead of m level-5 jobs that only the
        // 8 GB chip can host. Round-robin's rotating pointer sprays the
        // small jobs across both chips and its FIFO head blocks behind
        // the big ones; the weighted scorer keeps small jobs on the
        // 2 GB chip (balance term + capacity reservation), so the big
        // chip works the whole makespan and the worst idle share drops.
        let (k, m) = case;
        let mut specs = Vec::new();
        for i in 0..k {
            // Distinct dt per job keeps program keys distinct, so the
            // comparison measures load balance, not cache luck.
            let mut s = JobSpec::new(format!("small-{i}"), 3, Workload::ALL[i % 4], 4);
            s.dt = 1e-3 * (i + 1) as f64;
            specs.push(s);
        }
        for i in 0..m {
            let mut s = JobSpec::new(format!("big-{i}"), 5, Workload::ALL[i % 4], 4);
            s.dt = 1e-4 * (i + 1) as f64;
            specs.push(s);
        }
        let chips = fleet(&[ChipCapacity::Gb2, ChipCapacity::Gb8]);
        let weights = ScoreWeights::default();
        let weighted = plan(&specs, &chips, PlacementPolicy::CacheAware, &weights);
        let rr = plan(&specs, &chips, PlacementPolicy::RoundRobin, &weights);
        prop_assert!(weighted.rejected.is_empty());
        prop_assert!(rr.rejected.is_empty());
        let (wi, ri) = (weighted.worst_idle_share(), rr.worst_idle_share());
        prop_assert!(
            wi < ri,
            "weighted worst idle {wi:.6} must strictly beat round-robin {ri:.6} (k={k}, m={m})"
        );
    }
}

/// All `chips_wanted`-subsets of the fleet capacities.
fn subsets_of(caps: &[ChipCapacity], k: usize) -> Vec<Vec<ChipCapacity>> {
    fn recurse(
        caps: &[ChipCapacity],
        start: usize,
        k: usize,
        cur: &mut Vec<ChipCapacity>,
        out: &mut Vec<Vec<ChipCapacity>>,
    ) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..caps.len() {
            cur.push(caps[i]);
            recurse(caps, i + 1, k, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    recurse(caps, 0, k, &mut Vec::new(), &mut out);
    out
}
