//! The fleet's correctness contract: multiplexing must be invisible in
//! the results.
//!
//! * Every fleet-scheduled job's final state is **bit-identical** to a
//!   solo [`ClusterRunner`] run of the same spec on an identical chip
//!   cohort — concurrency, runner pooling, and `reset_state` reuse
//!   change wall-clock, never numerics.
//! * Every job stays within 1e-12 of the native dG solver.
//! * Jobs with equal replay keys produce byte-identical final states
//!   (the regression the spec-level content keys promise), and equal
//!   *program* keys compile to runners with equal
//!   [`ClusterRunner::program_content_key`] — the agreement that makes
//!   cache-affinity scoring sound.

use pim_cluster::{ClusterConfig, ClusterRunner};
use pim_fleet::{Fleet, FleetConfig, JobSpec, JobState, Workload};
use pim_sim::{ChipCapacity, ChipConfig};
use wavesim_dg::{Acoustic, Solver, State};
use wavesim_mesh::{Boundary, HexMesh};

fn chip(capacity: ChipCapacity) -> ChipConfig {
    ChipConfig { capacity, ..ChipConfig::default_2gb() }
}

/// The same mesh + initial-state construction the scheduler uses.
fn native_solver(spec: &JobSpec) -> (HexMesh, Solver<Acoustic>) {
    let mesh = HexMesh::refinement_level(spec.level, Boundary::Periodic);
    let mut solver =
        Solver::<Acoustic>::uniform(mesh.clone(), spec.order, spec.flux, spec.material);
    let workload = spec.workload;
    solver.set_initial(move |v, x| workload.value(v, x));
    (mesh, solver)
}

/// A fresh single-job run on an identical chip cohort — the reference
/// the fleet must reproduce exactly.
fn solo_run(spec: &JobSpec, chip_configs: &[ChipConfig]) -> State {
    let (mesh, solver) = native_solver(spec);
    let mut runner = ClusterRunner::new(
        &mesh,
        spec.order,
        spec.flux,
        spec.material,
        solver.state(),
        spec.dt,
        ClusterConfig::heterogeneous(chip_configs.to_vec()),
    );
    runner.run(spec.steps);
    runner.state()
}

#[test]
fn fleet_jobs_are_bit_identical_to_solo_runs_and_track_native_dg() {
    let mut fleet =
        Fleet::new(FleetConfig::new(vec![chip(ChipCapacity::Gb2), chip(ChipCapacity::Gb8)]));

    let mut specs = vec![
        JobSpec::new("pulse-a", 2, Workload::Pulse, 2),
        JobSpec::new("tones", 3, Workload::MixedTones, 2),
        // Same replay key as pulse-a: must land as a cache hit and
        // still produce a byte-identical state.
        JobSpec::new("pulse-b", 2, Workload::Pulse, 2),
    ];
    // A sharded job exercising the multi-chip heterogeneous path.
    let mut wide = JobSpec::new("wide", 2, Workload::ShearY, 2);
    wide.chips_wanted = 2;
    specs.push(wide);
    // An impossible ask: admission must fail it, not wedge the queue.
    let mut hopeless = JobSpec::new("hopeless", 1, Workload::PlaneX, 1);
    hopeless.chips_wanted = 3;
    specs.push(hopeless);

    for spec in &specs {
        fleet.submit(spec.clone());
    }
    let report = fleet.drain();
    assert_eq!(report.outcomes.len(), specs.len());

    for (spec, outcome) in specs.iter().zip(&report.outcomes) {
        if spec.name == "hopeless" {
            assert_eq!(outcome.state, JobState::Failed, "3 chips > fleet size must fail");
            assert!(outcome.final_state.is_none());
            continue;
        }
        assert_eq!(outcome.state, JobState::Done, "job {} did not finish", spec.name);
        let fleet_state = outcome.final_state.as_ref().unwrap();

        // Bit-identical to a fresh solo run on the same cohort.
        let solo = solo_run(spec, &outcome.chip_configs);
        let diff = fleet_state.max_abs_diff(&solo);
        assert_eq!(
            diff, 0.0,
            "job {} diverged from its solo replay by {diff:e} (chips {:?})",
            spec.name, outcome.chips
        );

        // And within discretization-roundoff of the native solver.
        let (_, mut reference) = native_solver(spec);
        reference.run(spec.dt, spec.steps);
        let native_diff = fleet_state.max_abs_diff(reference.state());
        assert!(native_diff <= 1e-12, "job {} diverged from native dG: {native_diff:e}", spec.name);
    }

    // pulse-a and pulse-b share a replay key on any one-chip cohort of
    // equal capacity; the fleet must have reused the resident program
    // (cache hit) and reproduced the state byte-for-byte.
    let a = &report.outcomes[0];
    let b = &report.outcomes[2];
    assert_eq!(
        a.chip_configs, b.chip_configs,
        "equal-key jobs should gravitate to the same cohort"
    );
    assert!(b.cache_hit, "the second equal-key job must reuse the resident program");
    assert_eq!(b.compile_seconds, 0.0, "a cache hit pays no compile time");
    let diff = a.final_state.as_ref().unwrap().max_abs_diff(b.final_state.as_ref().unwrap());
    assert_eq!(diff, 0.0, "equal replay keys must replay byte-identically, got {diff:e}");
    assert!(report.cache_hits >= 1);
    assert_eq!(
        report.cache_hits, report.plan.cache_hits,
        "executor reuse must match the plan's hit predictions"
    );
}

#[test]
fn spec_program_keys_agree_with_compiled_program_content_keys() {
    // Two specs that differ only in workload and step budget share a
    // program key — and their compiled runners carry identical
    // instruction streams, witnessed by the runner's content key.
    let caps = [ChipCapacity::Gb2];
    let configs = [chip(ChipCapacity::Gb2)];
    let a = JobSpec::new("a", 2, Workload::Pulse, 2);
    let mut b = JobSpec::new("b", 2, Workload::MixedTones, 5);
    b.chips_wanted = 1;
    assert_eq!(a.program_key(&caps), b.program_key(&caps));
    assert_ne!(a.replay_key(&caps), b.replay_key(&caps));

    let build = |spec: &JobSpec| {
        let (mesh, solver) = native_solver(spec);
        ClusterRunner::new(
            &mesh,
            spec.order,
            spec.flux,
            spec.material,
            solver.state(),
            spec.dt,
            ClusterConfig::heterogeneous(configs.to_vec()),
        )
    };
    let key_a = build(&a).program_content_key();
    let key_b = build(&b).program_content_key();
    assert_eq!(key_a, key_b, "equal program keys must compile to identical programs");

    // A different mesh level is a different program at both levels of
    // keying.
    let c = JobSpec::new("c", 3, Workload::Pulse, 2);
    assert_ne!(a.program_key(&caps), c.program_key(&caps));
    assert_ne!(key_a, build(&c).program_content_key());
}
