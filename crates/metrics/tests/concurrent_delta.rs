//! Property: registry snapshots are delta-exact under concurrent updates.
//!
//! Workers hammer shared counter/float/histogram handles through the rayon
//! pool (so `RAYON_NUM_THREADS=1` and `=4` CI legs exercise the sequential
//! and the genuinely concurrent paths), and snapshot deltas taken at quiet
//! points must equal the analytically known totals *exactly* — integer
//! counters lose nothing to sharding, float counters stay exact as long as
//! the increments are exactly representable, and phase deltas compose.

use proptest::prelude::*;
use rayon::prelude::*;

use pim_metrics::{disable, enable, global, Snapshot};

/// The enable/disable switch is process-global; tests that flip it must not
/// interleave with each other.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    match GATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// (updates per phase, increment modulus, histogram scale)
fn cases() -> impl Strategy<Value = (usize, u64, f64)> {
    (1usize..400, 1u64..17, prop_oneof![Just(0.25), Just(0.5), Just(1.0)])
}

/// Run one phase of concurrent updates and return the expected
/// (counter delta, float delta, histogram count delta).
fn run_phase(
    phase: u64,
    updates: usize,
    modulus: u64,
    scale: f64,
    c: &pim_metrics::Counter,
    f: &pim_metrics::FloatCounter,
    h: &pim_metrics::Histogram,
) -> (u64, f64, u64) {
    let items: Vec<u64> = (0..updates as u64).collect();
    items.par_chunks(8).for_each(|chunk| {
        for &i in chunk {
            c.add((phase + i) % modulus);
            // Multiples of 0.25/0.5/1.0 are exact in binary floating point,
            // so the shard sums and the snapshot delta must match exactly.
            f.add(((phase + i) % modulus) as f64 * scale);
            h.observe((i % 5) as f64 * scale);
        }
    });
    let counter_delta: u64 = items.iter().map(|&i| (phase + i) % modulus).sum();
    let float_delta: f64 = items.iter().map(|&i| ((phase + i) % modulus) as f64 * scale).sum();
    (counter_delta, float_delta, updates as u64)
}

fn expect_delta(later: &Snapshot, earlier: &Snapshot, key: &str, expected: (u64, f64, u64)) {
    let d = later.delta(earlier);
    let ckey = format!("delta_exact_ops_total{{case=\"{key}\"}}");
    let fkey = format!("delta_exact_joules_total{{case=\"{key}\"}}");
    let hkey = format!("delta_exact_hist{{case=\"{key}\"}}");
    assert_eq!(d.counters.get(&ckey).copied().unwrap_or(0), expected.0, "counter delta for {key}");
    assert_eq!(
        d.float_counters.get(&fkey).copied().unwrap_or(0.0),
        expected.1,
        "float counter delta for {key}"
    );
    let hist_count = d.histograms.get(&hkey).map(|h| h.count).unwrap_or(0);
    assert_eq!(hist_count, expected.2, "histogram count delta for {key}");
    if let Some(hist) = d.histograms.get(&hkey) {
        assert_eq!(hist.counts.iter().sum::<u64>(), hist.count, "bucket counts sum to count");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshots_are_delta_exact_under_concurrent_updates(case in cases()) {
        let _gate = gate();
        let (updates, modulus, scale) = case;
        let key = format!("{updates}_{modulus}_{scale}");
        let labels = [("case", key.as_str())];
        let c = global().counter("delta_exact_ops_total", &labels);
        let f = global().float_counter("delta_exact_joules_total", &labels);
        let h = global().histogram("delta_exact_hist", &labels, &[0.5, 1.5, 3.0]);

        enable();
        let s0 = global().snapshot();
        let phase1 = run_phase(1, updates, modulus, scale, &c, &f, &h);
        let s1 = global().snapshot();
        let phase2 = run_phase(2, updates / 2 + 1, modulus, scale, &c, &f, &h);
        let s2 = global().snapshot();
        disable();

        // Each phase delta is exact, and the two compose to the total.
        expect_delta(&s1, &s0, &key, phase1);
        expect_delta(&s2, &s1, &key, phase2);
        expect_delta(
            &s2,
            &s0,
            &key,
            (phase1.0 + phase2.0, phase1.1 + phase2.1, phase1.2 + phase2.2),
        );
    }
}

#[test]
fn updates_while_disabled_never_leak_into_deltas() {
    let _gate = gate();
    let c = global().counter("disabled_leak_total", &[]);
    disable();
    let s0 = global().snapshot();
    let items: Vec<u64> = (0..1000).collect();
    items.par_chunks(16).for_each(|chunk| {
        for &i in chunk {
            c.add(i + 1);
        }
    });
    let s1 = global().snapshot();
    let d = s1.delta(&s0);
    assert!(d.counters.is_empty(), "disabled updates leaked: {:?}", d.counters);
    assert!(d.float_counters.is_empty());
}
