//! # pim-metrics — hardware performance counters for the Wave-PIM stack
//!
//! A low-overhead counter layer: monotonic counters, gauges, and fixed-bucket
//! histograms behind a sharded atomic [`MetricsRegistry`]. Where `pim-trace`
//! records *events* (spans with timestamps, exported to Perfetto), this crate
//! records *aggregates* (how many NOR gates fired, how many joules each
//! mechanism burned, how long each lane was busy) that stay cheap at any
//! event rate and can be snapshotted per RK stage or per step.
//!
//! ## Disablement contract (same as `pim-trace`)
//!
//! - Runtime switch: metrics are **off by default**; [`enable`]/[`disable`]
//!   flip a global `AtomicBool` read with a single relaxed load per update
//!   site via [`enabled`].
//! - Compile-time switch: the `compiled-off` feature folds [`enabled`] to a
//!   constant `false` so every update branch compiles away.
//!
//! Reads ([`Counter::value`], [`MetricsRegistry::snapshot`]) are *not*
//! gated — a snapshot taken after `disable()` still sees everything recorded
//! while enabled.
//!
//! ## Sharding
//!
//! Hot counters are striped over [`SHARDS`] cache-line-padded atomic cells
//! indexed by a per-thread slot, so concurrent writers on different threads
//! don't bounce a cache line. `u64` counters use `fetch_add`; `f64` counters
//! use a compare-exchange loop on the bit pattern (contention-free in the
//! common one-writer-per-shard case).
//!
//! ## Snapshots and deltas
//!
//! [`MetricsRegistry::snapshot`] captures every registered metric into plain
//! `BTreeMap`s; [`Snapshot::delta`] subtracts an earlier snapshot so callers
//! get exact per-step / per-stage increments (integer counters are exactly
//! delta-consistent; see the property test in `tests/concurrent_delta.rs`).
//!
//! Export: [`export::prometheus_text`] (text exposition format) and
//! [`export::json`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub mod export;
pub mod http;

// ---------------------------------------------------------------------------
// Global enable/disable gate (contract mirrors pim-trace).
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Number of metric updates recorded while enabled (relaxed global count).
///
/// This is the metrics analogue of the trace ring length: overhead benches
/// use it to count update sites exercised by a run without instrumenting the
/// instrumentation.
static UPDATES: AtomicU64 = AtomicU64::new(0);

/// Is metrics collection enabled? One relaxed atomic load; with the
/// `compiled-off` feature this is a constant `false` and every update branch
/// folds away.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "compiled-off")]
    {
        false
    }
    #[cfg(not(feature = "compiled-off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turn metrics collection on (no-op under `compiled-off`).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn metrics collection off. Already-recorded values remain readable.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Total number of individual metric updates recorded while enabled.
pub fn updates_recorded() -> u64 {
    UPDATES.load(Ordering::Relaxed)
}

#[inline]
fn count_update() {
    UPDATES.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Sharded storage.
// ---------------------------------------------------------------------------

/// Number of stripes per sharded counter. Power of two; thread slots wrap.
pub const SHARDS: usize = 16;

/// A cache-line-padded atomic cell so adjacent shards never share a line.
#[repr(align(64))]
struct PaddedAtomicU64(AtomicU64);

impl PaddedAtomicU64 {
    const fn new() -> Self {
        Self(AtomicU64::new(0))
    }
}

fn new_shards() -> [PaddedAtomicU64; SHARDS] {
    std::array::from_fn(|_| PaddedAtomicU64::new())
}

/// Stable per-thread shard slot: threads get consecutive slots on first use
/// and always hit the same stripe afterwards.
#[inline]
fn shard_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
        }
        v & (SHARDS - 1)
    })
}

// ---------------------------------------------------------------------------
// Metric handles.
// ---------------------------------------------------------------------------

/// Monotonic integer counter, sharded over [`SHARDS`] atomic stripes.
///
/// Handles are cheap `Arc` clones; cache one per instrumentation site (the
/// registry lookup takes a lock and should stay off hot paths).
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedAtomicU64; SHARDS]>,
}

impl Counter {
    fn new() -> Self {
        Self { shards: Arc::new(new_shards()) }
    }

    /// Add `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        count_update();
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one (no-op while disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// Monotonic `f64` counter (energy in joules, busy seconds, FLOPs as f64).
///
/// Each shard accumulates via a compare-exchange loop on the bit pattern;
/// totals are the fixed-order sum over shards.
#[derive(Clone)]
pub struct FloatCounter {
    shards: Arc<[PaddedAtomicU64; SHARDS]>,
}

impl FloatCounter {
    fn new() -> Self {
        Self { shards: Arc::new(new_shards()) }
    }

    /// Add `x` (no-op while disabled). Negative increments are rejected in
    /// debug builds — these counters are monotonic by contract.
    #[inline]
    pub fn add(&self, x: f64) {
        if !enabled() {
            return;
        }
        debug_assert!(x >= 0.0, "FloatCounter increments must be non-negative, got {x}");
        count_update();
        let cell = &self.shards[shard_index()].0;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current total across all shards (summed in shard order).
    pub fn value(&self) -> f64 {
        self.shards.iter().map(|s| f64::from_bits(s.0.load(Ordering::Relaxed))).sum()
    }
}

/// Last-write-wins `f64` gauge (utilization, queue depth, configuration).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Self {
        Self { bits: Arc::new(AtomicU64::new(0f64.to_bits())) }
    }

    /// Set the gauge (no-op while disabled).
    #[inline]
    pub fn set(&self, x: f64) {
        if !enabled() {
            return;
        }
        count_update();
        self.bits.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram: finite sorted upper bounds plus an implicit
/// `+Inf` overflow bucket, a sharded observation count, and an `f64` sum.
#[derive(Clone)]
pub struct Histogram {
    bounds: Arc<[f64]>,
    /// One atomic per bucket (`bounds.len() + 1` entries); buckets are
    /// per-value, not cumulative — export layers cumulate for Prometheus.
    buckets: Arc<[AtomicU64]>,
    sum: FloatCounter,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        let buckets: Vec<AtomicU64> = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self { bounds: bounds.into(), buckets: buckets.into(), sum: FloatCounter::new() }
    }

    /// Record one observation (no-op while disabled).
    #[inline]
    pub fn observe(&self, x: f64) {
        if !enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < x);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.add(x);
    }

    /// Bucket upper bounds (excluding the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Snapshot this histogram's buckets, count, and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            count: counts.iter().sum(),
            sum: self.sum.value(),
            counts,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// Format a metric key in Prometheus exposition style:
/// `name{label="value",...}` (or just `name` with no labels).
///
/// Labels are emitted in the order given; callers use a stable order so the
/// same site always yields the same key.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "metric name must be a bare identifier, got {name:?}"
    );
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    float_counters: BTreeMap<String, FloatCounter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named home for every metric. Handle acquisition takes a mutex and returns
/// a clone of the shared handle — do it once at setup, not per update.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

fn lock_inner(registry: &MetricsRegistry) -> std::sync::MutexGuard<'_, RegistryInner> {
    match registry.inner.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the integer counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = metric_key(name, labels);
        lock_inner(self).counters.entry(key).or_insert_with(Counter::new).clone()
    }

    /// Get or create the `f64` counter `name{labels}`.
    pub fn float_counter(&self, name: &str, labels: &[(&str, &str)]) -> FloatCounter {
        let key = metric_key(name, labels);
        lock_inner(self).float_counters.entry(key).or_insert_with(FloatCounter::new).clone()
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = metric_key(name, labels);
        lock_inner(self).gauges.entry(key).or_insert_with(Gauge::new).clone()
    }

    /// Get or create the histogram `name{labels}` with the given finite
    /// bucket upper bounds. Panics if the same key was registered with
    /// different bounds.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let key = metric_key(name, labels);
        let mut inner = lock_inner(self);
        let hist = inner.histograms.entry(key.clone()).or_insert_with(|| Histogram::new(bounds));
        assert_eq!(hist.bounds(), bounds, "histogram {key} re-registered with different bounds");
        hist.clone()
    }

    /// Capture every registered metric into a plain-data [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = lock_inner(self);
        Snapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.clone(), c.value())).collect(),
            float_counters: inner
                .float_counters
                .iter()
                .map(|(k, c)| (k.clone(), c.value()))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, g)| (k.clone(), g.value())).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// The process-wide registry used by all Wave-PIM instrumentation.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// Point-in-time view of a histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds; `counts` has one extra `+Inf` entry.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// Point-in-time view of every metric in a registry, keyed by
/// [`metric_key`]-formatted names. Plain data: compare, diff, export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub float_counters: BTreeMap<String, f64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The increment from `earlier` to `self`: counters and histogram
    /// buckets subtract (a metric absent from `earlier` counts from zero);
    /// gauges keep their latest value. Metrics unchanged at zero delta are
    /// dropped so per-stage deltas stay small.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v - earlier.counters.get(k).copied().unwrap_or(0)))
            .filter(|(_, v)| *v != 0)
            .collect();
        let float_counters = self
            .float_counters
            .iter()
            .map(|(k, &v)| (k.clone(), v - earlier.float_counters.get(k).copied().unwrap_or(0.0)))
            .filter(|(_, v)| *v != 0.0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut d = h.clone();
                if let Some(e) = earlier.histograms.get(k) {
                    for (c, &ec) in d.counts.iter_mut().zip(&e.counts) {
                        *c -= ec;
                    }
                    d.count -= e.count;
                    d.sum -= e.sum;
                }
                (k.clone(), d)
            })
            .filter(|(_, h)| h.count != 0)
            .collect();
        Snapshot { counters, float_counters, gauges: self.gauges.clone(), histograms }
    }

    /// Sum of all `f64` counters whose key starts with `prefix` — the common
    /// "total energy across mechanisms" reduction.
    pub fn float_total(&self, prefix: &str) -> f64 {
        self.float_counters.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, v)| v).sum()
    }

    /// Sum of all integer counters whose key starts with `prefix`.
    pub fn counter_total(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, v)| v).sum()
    }
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that flip the global switch.
    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _guard = match GATE.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        enable();
        let out = f();
        disable();
        out
    }

    #[test]
    fn disabled_updates_are_dropped() {
        let c = MetricsRegistry::new().counter("test_disabled_total", &[]);
        disable();
        c.add(7);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_and_float_accumulate_when_enabled() {
        with_enabled(|| {
            let reg = MetricsRegistry::new();
            let c = reg.counter("ops_total", &[("kind", "read")]);
            let f = reg.float_counter("energy_joules_total", &[]);
            c.add(3);
            c.inc();
            f.add(0.5);
            f.add(1.25);
            assert_eq!(c.value(), 4);
            assert_eq!(f.value(), 1.75);
            let snap = reg.snapshot();
            assert_eq!(snap.counters["ops_total{kind=\"read\"}"], 4);
            assert_eq!(snap.float_counters["energy_joules_total"], 1.75);
        });
    }

    #[test]
    fn same_key_returns_same_metric() {
        with_enabled(|| {
            let reg = MetricsRegistry::new();
            let a = reg.counter("shared_total", &[("x", "1")]);
            let b = reg.counter("shared_total", &[("x", "1")]);
            a.add(2);
            b.add(3);
            assert_eq!(a.value(), 5);
        });
    }

    #[test]
    fn gauge_is_last_write_wins() {
        with_enabled(|| {
            let g = MetricsRegistry::new().gauge("depth", &[]);
            g.set(4.0);
            g.set(2.5);
            assert_eq!(g.value(), 2.5);
        });
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        with_enabled(|| {
            let reg = MetricsRegistry::new();
            let h = reg.histogram("lat_seconds", &[], &[1.0, 10.0]);
            h.observe(0.5); // <= 1.0
            h.observe(1.0); // <= 1.0 (bounds are inclusive upper edges)
            h.observe(5.0); // <= 10.0
            h.observe(50.0); // +Inf
            let s = h.snapshot();
            assert_eq!(s.counts, vec![2, 1, 1]);
            assert_eq!(s.count, 4);
            assert_eq!(s.sum, 56.5);
        });
    }

    #[test]
    fn delta_subtracts_and_drops_zeroes() {
        with_enabled(|| {
            let reg = MetricsRegistry::new();
            let a = reg.counter("a_total", &[]);
            let b = reg.counter("b_total", &[]);
            let g = reg.gauge("g", &[]);
            a.add(10);
            b.add(1);
            g.set(3.0);
            let s0 = reg.snapshot();
            a.add(5);
            g.set(7.0);
            let s1 = reg.snapshot();
            let d = s1.delta(&s0);
            assert_eq!(d.counters.get("a_total"), Some(&5));
            assert!(!d.counters.contains_key("b_total"), "zero-delta metrics are dropped");
            assert_eq!(d.gauges["g"], 7.0);
        });
    }

    #[test]
    fn metric_key_formatting() {
        assert_eq!(metric_key("plain", &[]), "plain");
        assert_eq!(
            metric_key("x_total", &[("chip", "0"), ("kernel", "Volume")]),
            "x_total{chip=\"0\",kernel=\"Volume\"}"
        );
    }

    #[test]
    fn prefix_totals() {
        with_enabled(|| {
            let reg = MetricsRegistry::new();
            reg.float_counter("e_total", &[("m", "compute")]).add(1.0);
            reg.float_counter("e_total", &[("m", "reads")]).add(2.0);
            reg.counter("n_total", &[("m", "x")]).add(3);
            let s = reg.snapshot();
            assert_eq!(s.float_total("e_total"), 3.0);
            assert_eq!(s.counter_total("n_total"), 3);
        });
    }

    #[test]
    fn disabled_update_overhead_is_negligible() {
        // Same bar as pim-trace: the disabled path must stay well under
        // 50 ns per call (one relaxed load + branch; typically < 1 ns).
        disable();
        let c = MetricsRegistry::new().counter("overhead_probe_total", &[]);
        let f = MetricsRegistry::new().float_counter("overhead_probe_joules", &[]);
        let start = std::time::Instant::now();
        let calls = 1_000_000u64;
        for i in 0..calls {
            c.add(i);
            f.add(i as f64);
        }
        let per_call = start.elapsed().as_secs_f64() / (2 * calls) as f64;
        assert_eq!(c.value(), 0);
        assert!(per_call < 50e-9, "disabled metric update cost {per_call:.2e}s/call");
    }
}
