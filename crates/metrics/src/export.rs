//! Exporters for [`Snapshot`]: Prometheus text exposition format and JSON.
//!
//! Both are dependency-free. JSON numbers are rendered with the same
//! shortest-roundtrip rules as `pim_trace::json::number` (Rust's `{}` for
//! f64 round-trips); the output is plain-data and parses with
//! `pim_trace::json::parse` in the bench layer's schema tests.

use crate::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Split a [`crate::metric_key`]-formatted key into (base name, label block).
/// `"x_total{chip=\"0\"}"` → `("x_total", "{chip=\"0\"}")`.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => key.split_at(i),
        None => (key, ""),
    }
}

/// Render a `f64` for both exporters: finite shortest-roundtrip, with
/// non-finite values mapped to Prometheus spellings (`+Inf`/`-Inf`/`NaN`)
/// for text and `null` for JSON handled by callers.
fn number(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x.is_infinite() {
        if x > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{x}")
    }
}

/// Group keys by base metric name, preserving the BTreeMap order.
fn by_base<V>(map: &BTreeMap<String, V>) -> Vec<(&str, Vec<(&str, &V)>)> {
    let mut out: Vec<(&str, Vec<(&str, &V)>)> = Vec::new();
    for (key, value) in map {
        let (base, labels) = split_key(key);
        match out.last_mut() {
            Some((last, rows)) if *last == base => rows.push((labels, value)),
            _ => out.push((base, vec![(labels, value)])),
        }
    }
    out
}

/// Prometheus text exposition format (version 0.0.4): one `# TYPE` line per
/// metric family, then one sample per label set. Histograms emit cumulative
/// `_bucket{le=...}` samples plus `_sum` and `_count`.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (base, rows) in by_base(&snapshot.counters) {
        let _ = writeln!(out, "# TYPE {base} counter");
        for (labels, value) in rows {
            let _ = writeln!(out, "{base}{labels} {value}");
        }
    }
    for (base, rows) in by_base(&snapshot.float_counters) {
        let _ = writeln!(out, "# TYPE {base} counter");
        for (labels, value) in rows {
            let _ = writeln!(out, "{base}{labels} {}", number(*value));
        }
    }
    for (base, rows) in by_base(&snapshot.gauges) {
        let _ = writeln!(out, "# TYPE {base} gauge");
        for (labels, value) in rows {
            let _ = writeln!(out, "{base}{labels} {}", number(*value));
        }
    }
    for (base, rows) in by_base(&snapshot.histograms) {
        let _ = writeln!(out, "# TYPE {base} histogram");
        for (labels, hist) in rows {
            write_histogram(&mut out, base, labels, hist);
        }
    }
    out
}

fn write_histogram(out: &mut String, base: &str, labels: &str, hist: &HistogramSnapshot) {
    // Splice le="..." into the existing label block (or start one).
    let le_labels = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
        }
    };
    let mut cumulative = 0u64;
    for (i, count) in hist.counts.iter().enumerate() {
        cumulative += count;
        let le = match hist.bounds.get(i) {
            Some(b) => number(*b),
            None => "+Inf".to_string(),
        };
        let _ = writeln!(out, "{base}_bucket{} {cumulative}", le_labels(&le));
    }
    let _ = writeln!(out, "{base}_sum{labels} {}", number(hist.sum));
    let _ = writeln!(out, "{base}_count{labels} {}", hist.count);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_number(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    number(x)
}

/// JSON object with one section per metric class:
/// `{"counters": {...}, "float_counters": {...}, "gauges": {...},
///   "histograms": {"name": {"bounds": [...], "counts": [...], "count": n, "sum": x}}}`.
pub fn json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (key, value) in &snapshot.counters {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let _ = write!(out, "{sep}    \"{}\": {value}", json_escape(key));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"float_counters\": {");
    first = true;
    for (key, value) in &snapshot.float_counters {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let _ = write!(out, "{sep}    \"{}\": {}", json_escape(key), json_number(*value));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"gauges\": {");
    first = true;
    for (key, value) in &snapshot.gauges {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let _ = write!(out, "{sep}    \"{}\": {}", json_escape(key), json_number(*value));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"histograms\": {");
    first = true;
    for (key, hist) in &snapshot.histograms {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let bounds: Vec<String> = hist.bounds.iter().map(|b| json_number(*b)).collect();
        let counts: Vec<String> = hist.counts.iter().map(|c| c.to_string()).collect();
        let _ = write!(
            out,
            "{sep}    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"count\": {}, \"sum\": {}}}",
            json_escape(key),
            bounds.join(", "),
            counts.join(", "),
            hist.count,
            json_number(hist.sum)
        );
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use std::sync::Mutex;

    fn sample_snapshot() -> Snapshot {
        static GATE: Mutex<()> = Mutex::new(());
        let _guard = match GATE.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        crate::enable();
        let reg = MetricsRegistry::new();
        reg.counter("pim_ops_total", &[("chip", "0"), ("op", "read")]).add(3);
        reg.counter("pim_ops_total", &[("chip", "1"), ("op", "read")]).add(5);
        reg.float_counter("pim_energy_joules_total", &[("mechanism", "compute")]).add(0.25);
        reg.gauge("pim_utilization", &[("chip", "0")]).set(0.75);
        let h = reg.histogram("stage_seconds", &[("chip", "0")], &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.002);
        h.observe(0.5);
        let snap = reg.snapshot();
        crate::disable();
        snap
    }

    #[test]
    fn prometheus_text_format() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE pim_ops_total counter\n"));
        assert!(text.contains("pim_ops_total{chip=\"0\",op=\"read\"} 3\n"));
        assert!(text.contains("pim_ops_total{chip=\"1\",op=\"read\"} 5\n"));
        assert!(text.contains("pim_energy_joules_total{mechanism=\"compute\"} 0.25\n"));
        assert!(text.contains("# TYPE pim_utilization gauge\n"));
        assert!(text.contains("pim_utilization{chip=\"0\"} 0.75\n"));
        // Histogram buckets are cumulative and end at +Inf.
        assert!(text.contains("stage_seconds_bucket{chip=\"0\",le=\"0.001\"} 1\n"));
        assert!(text.contains("stage_seconds_bucket{chip=\"0\",le=\"0.01\"} 2\n"));
        assert!(text.contains("stage_seconds_bucket{chip=\"0\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("stage_seconds_count{chip=\"0\"} 3\n"));
        // Exactly one TYPE line per family.
        assert_eq!(text.matches("# TYPE pim_ops_total").count(), 1);
    }

    #[test]
    fn json_round_trips_structure() {
        let text = json(&sample_snapshot());
        // Hand-rolled sanity: balanced braces, all four sections present.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        for section in ["\"counters\"", "\"float_counters\"", "\"gauges\"", "\"histograms\""] {
            assert!(text.contains(section), "missing {section} in {text}");
        }
        assert!(text.contains("\"pim_ops_total{chip=\\\"0\\\",op=\\\"read\\\"}\": 3"));
        assert!(text.contains("\"count\": 3"));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let text = json(&Snapshot::default());
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        let prom = prometheus_text(&Snapshot::default());
        assert!(prom.is_empty());
    }
}
