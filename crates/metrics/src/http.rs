//! The pending Prometheus *pull* endpoint: a minimal, dependency-free
//! blocking HTTP loop that serves [`crate::export::prometheus_text`] of
//! the [`crate::global`] registry.
//!
//! Long-running processes (the fleet scheduler, `profile_report
//! --serve`) are exactly what a scrape target is for: Prometheus polls
//! `GET /metrics` on its own schedule while the process works. The
//! server is one background thread with one short-lived connection at a
//! time — a scrape is a few kilobytes of text once every scrape
//! interval, so an accept loop with blocking I/O is the whole protocol
//! stack this needs. No keep-alive, no TLS, no routing beyond
//! `/metrics` (and `/`, for humans poking with a browser).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running scrape endpoint. Dropping the handle (or calling
/// [`ScrapeServer::shutdown`]) stops the accept loop and joins the
/// serving thread.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeServer {
    /// The address the listener actually bound — with port 0 in the
    /// request this is where the kernel placed us.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of requests served so far.
    pub fn scrapes_served(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; one throwaway
        // connection wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `addr` (use port 0 to let the kernel pick) and serves
/// `GET /metrics` from a background thread until the returned handle is
/// shut down or dropped. Every response is a fresh snapshot of the
/// process-global registry in Prometheus text exposition format.
pub fn serve(addr: impl ToSocketAddrs) -> std::io::Result<ScrapeServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let (stop2, scrapes2) = (Arc::clone(&stop), Arc::clone(&scrapes));
    let thread =
        std::thread::Builder::new().name("pim-metrics-scrape".into()).spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = handle(stream, &scrapes2);
                }
            }
        })?;
    Ok(ScrapeServer { addr, stop, scrapes, thread: Some(thread) })
}

/// Serves one connection: reads the request head, answers `/metrics`
/// (or `/`) with the text exposition, anything else with 404. The
/// scrape counter increments *before* the response bytes go out, so a
/// client that has read the response always observes its own scrape
/// counted.
fn handle(stream: TcpStream, scrapes: &AtomicU64) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        // No request at all — the shutdown wake-up connection. Not a
        // scrape; don't count or answer it.
        return Ok(());
    }
    // Drain the header block; the response does not depend on it.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }

    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = if path == "/metrics" || path == "/" {
        let text = crate::export::prometheus_text(&crate::global().snapshot());
        ("200 OK", "text/plain; version=0.0.4; charset=utf-8", text)
    } else {
        ("404 Not Found", "text/plain; charset=utf-8", "not found; scrape /metrics\n".to_string())
    };

    scrapes.fetch_add(1, Ordering::Relaxed);
    let mut out = stream;
    write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    /// One full scrape over a real socket — the "curl one scrape" smoke
    /// test: bind an ephemeral port, GET /metrics, check the exposition.
    #[test]
    fn serves_one_scrape_over_tcp() {
        crate::enable();
        crate::global().counter("scrape_smoke_total", &[("src", "test")]).add(3);
        crate::disable();

        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();

        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "bad status: {response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(response.contains("# TYPE scrape_smoke_total counter"));
        assert!(response.contains("scrape_smoke_total{src=\"test\"} 3"));
        assert!(server.scrapes_served() >= 1);
        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_a_404() {
        let server = serve("127.0.0.1:0").unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"GET /nope HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "bad status: {response}");
        server.shutdown();
    }
}
