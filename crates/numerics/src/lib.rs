//! Numerical building blocks for nodal discontinuous Galerkin (dG) wave
//! solvers on tensor-product hexahedral elements.
//!
//! The Wave-PIM paper (ICPP 2021, §2.2) discretizes the acoustic and elastic
//! wave equations with the dG method on hexahedral elements whose nodes are
//! Gauss-Legendre-Lobatto (GLL) points. This crate provides:
//!
//! * [`legendre`] — Legendre polynomial evaluation and derivatives,
//! * [`gll`] — GLL quadrature points and weights (the paper's *GLL Point*
//!   and *GLL Weight* constants, Table 1),
//! * [`lagrange`] — barycentric Lagrange interpolation and the 1-D
//!   differentiation matrix (the paper's *dshape* constants, Table 1),
//! * [`tensor`] — application of 1-D operators along each axis of an
//!   `n × n × n` nodal field, the core of the *Volume* kernel,
//! * [`vec3`] — a minimal 3-vector used across the solver crates.
//!
//! Everything here is deterministic, allocation-conscious and free of
//! external dependencies so that the higher layers (mesh, solver, PIM
//! mapper) can rely on bit-reproducible results.

pub mod gll;
pub mod lagrange;
pub mod legendre;
pub mod tensor;
pub mod vec3;

pub use gll::GllRule;
pub use lagrange::DiffMatrix;
pub use vec3::Vec3;

/// Machine tolerance used by the Newton solves in this crate.
pub(crate) const NEWTON_TOL: f64 = 1e-15;

/// Maximum Newton iterations for root finding; generous because GLL root
/// finding from Chebyshev initial guesses converges in < 10 iterations.
pub(crate) const NEWTON_MAX_ITER: usize = 100;
