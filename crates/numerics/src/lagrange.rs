//! Barycentric Lagrange interpolation and the 1-D differentiation matrix.
//!
//! In a nodal dG method, derivatives of the solution within an element are
//! computed by a dense matrix-vector product with the differentiation matrix
//! `D`, where `D[i][j] = l'_j(x_i)` and `l_j` is the Lagrange basis on the
//! GLL points. The paper calls the stored derivative values *dshape*
//! (Table 1); the per-node dot-product between a line of nodes and a row of
//! `D` is exactly the "derivative computation" of footnote 2(b).

use crate::gll::GllRule;

/// Barycentric weights for a set of distinct interpolation nodes.
///
/// `w_j = 1 / Π_{k≠j} (x_j - x_k)`, normalized so the largest magnitude is 1
/// for numerical robustness (normalization cancels in all uses).
pub fn barycentric_weights(points: &[f64]) -> Vec<f64> {
    let n = points.len();
    let mut w = vec![1.0; n];
    for j in 0..n {
        for k in 0..n {
            if k != j {
                w[j] /= points[j] - points[k];
            }
        }
    }
    let max = w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    for v in &mut w {
        *v /= max;
    }
    w
}

/// Evaluates the Lagrange interpolant of `values` (given at `points`) at `x`
/// using the numerically stable barycentric formula of the second kind.
pub fn barycentric_interpolate(points: &[f64], weights: &[f64], values: &[f64], x: f64) -> f64 {
    debug_assert_eq!(points.len(), weights.len());
    debug_assert_eq!(points.len(), values.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for ((&xj, &wj), &fj) in points.iter().zip(weights).zip(values) {
        let dx = x - xj;
        if dx == 0.0 {
            return fj;
        }
        let t = wj / dx;
        num += t * fj;
        den += t;
    }
    num / den
}

/// A dense square differentiation matrix on a nodal basis.
///
/// Stored row-major; `apply` computes `out[i] = Σ_j D[i][j] v[j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffMatrix {
    n: usize,
    entries: Vec<f64>,
}

impl DiffMatrix {
    /// Builds the differentiation matrix for the nodes of a GLL rule using
    /// the barycentric formulas
    ///
    /// `D[i][j] = (w_j / w_i) / (x_i - x_j)` for `i ≠ j`, and
    /// `D[i][i] = -Σ_{j≠i} D[i][j]` (negative row-sum trick, which enforces
    /// that differentiating a constant gives exactly zero).
    pub fn for_gll(rule: &GllRule) -> Self {
        Self::for_points(rule.points())
    }

    /// Builds the differentiation matrix for arbitrary distinct nodes.
    pub fn for_points(points: &[f64]) -> Self {
        let n = points.len();
        let w = barycentric_weights(points);
        let mut entries = vec![0.0; n * n];
        for i in 0..n {
            let mut diag = 0.0;
            for j in 0..n {
                if i != j {
                    let d = (w[j] / w[i]) / (points[i] - points[j]);
                    entries[i * n + j] = d;
                    diag -= d;
                }
            }
            entries[i * n + i] = diag;
        }
        Self { n, entries }
    }

    /// Matrix dimension (number of nodes).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row-major entry access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.entries[i * self.n + j]
    }

    /// Raw row-major entries, length `n²`. This is the *dshape* table the
    /// Wave-PIM layout broadcasts into the constants rows of each block.
    #[inline]
    pub fn entries(&self) -> &[f64] {
        &self.entries
    }

    /// One row of the matrix.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.entries[i * self.n..(i + 1) * self.n]
    }

    /// Dense matrix-vector product `out = D v`.
    pub fn apply(&self, v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(v.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.n {
            let row = self.row(i);
            let mut acc = 0.0;
            #[allow(clippy::needless_range_loop)]
            for j in 0..self.n {
                acc += row[j] * v[j];
            }
            out[i] = acc;
        }
    }

    /// Transposed product `out = Dᵀ v`, used by weak-form operators.
    pub fn apply_transpose(&self, v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(v.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        out.fill(0.0);
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.n {
            let row = self.row(j);
            let vj = v[j];
            for (o, &d) in out.iter_mut().zip(row) {
                *o += d * vj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gll::GllRule;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn interpolation_reproduces_nodal_values() {
        let rule = GllRule::new(6);
        let w = barycentric_weights(rule.points());
        let values: Vec<f64> = rule.points().iter().map(|&x| x.sin()).collect();
        for (i, &x) in rule.points().iter().enumerate() {
            assert_close(barycentric_interpolate(rule.points(), &w, &values, x), values[i], 0.0);
        }
    }

    #[test]
    fn interpolation_is_exact_for_polynomials() {
        let rule = GllRule::new(5);
        let w = barycentric_weights(rule.points());
        let poly = |x: f64| 3.0 * x.powi(4) - 2.0 * x.powi(2) + 0.5 * x - 1.0;
        let values: Vec<f64> = rule.points().iter().map(|&x| poly(x)).collect();
        for &x in &[-0.83, -0.11, 0.47, 0.92] {
            assert_close(barycentric_interpolate(rule.points(), &w, &values, x), poly(x), 1e-12);
        }
    }

    #[test]
    fn diff_matrix_kills_constants() {
        for n in 2..=12 {
            let rule = GllRule::new(n);
            let d = DiffMatrix::for_gll(&rule);
            let v = vec![7.5; n];
            let mut out = vec![0.0; n];
            d.apply(&v, &mut out);
            for &o in &out {
                assert_close(o, 0.0, 1e-12);
            }
        }
    }

    #[test]
    fn diff_matrix_differentiates_polynomials_exactly() {
        // On n GLL points, D differentiates polynomials up to degree n-1
        // exactly at the nodes.
        for n in 2..=10 {
            let rule = GllRule::new(n);
            let d = DiffMatrix::for_gll(&rule);
            for degree in 0..n {
                let v: Vec<f64> = rule.points().iter().map(|&x| x.powi(degree as i32)).collect();
                let mut out = vec![0.0; n];
                d.apply(&v, &mut out);
                for (i, &x) in rule.points().iter().enumerate() {
                    let exact =
                        if degree == 0 { 0.0 } else { degree as f64 * x.powi(degree as i32 - 1) };
                    assert_close(out[i], exact, 1e-9);
                }
            }
        }
    }

    #[test]
    fn diff_matrix_two_points_is_half_jump() {
        // With nodes {-1, 1}, l0 = (1-x)/2 and l1 = (1+x)/2, so D = [[-.5, .5], [-.5, .5]].
        let d = DiffMatrix::for_gll(&GllRule::new(2));
        assert_close(d.get(0, 0), -0.5, 1e-15);
        assert_close(d.get(0, 1), 0.5, 1e-15);
        assert_close(d.get(1, 0), -0.5, 1e-15);
        assert_close(d.get(1, 1), 0.5, 1e-15);
    }

    #[test]
    fn transpose_apply_matches_manual_transpose() {
        let rule = GllRule::new(7);
        let d = DiffMatrix::for_gll(&rule);
        let v: Vec<f64> = (0..7).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut out_t = vec![0.0; 7];
        d.apply_transpose(&v, &mut out_t);
        for (i, &out) in out_t.iter().enumerate() {
            let mut manual = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                manual += d.get(j, i) * vj;
            }
            assert_close(out, manual, 1e-13);
        }
    }

    #[test]
    fn gll_diagonal_mass_summation_by_parts() {
        // GLL collocation satisfies the summation-by-parts property
        // M D + (M D)ᵀ = B where M = diag(w) and B = diag(-1, 0, …, 0, 1).
        for n in 2..=10 {
            let rule = GllRule::new(n);
            let d = DiffMatrix::for_gll(&rule);
            let w = rule.weights();
            for i in 0..n {
                for j in 0..n {
                    let q = w[i] * d.get(i, j) + w[j] * d.get(j, i);
                    let b = if i == j && i == 0 {
                        -1.0
                    } else if i == j && i == n - 1 {
                        1.0
                    } else {
                        0.0
                    };
                    assert_close(q, b, 1e-11);
                }
            }
        }
    }
}
