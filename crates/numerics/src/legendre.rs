//! Legendre polynomials and their derivatives.
//!
//! The GLL points of order `n` are the roots of `(1 - x²) P'_n(x)` where
//! `P_n` is the Legendre polynomial of degree `n`. The recurrences used here
//! are the standard three-term forms and are numerically stable over the
//! `[-1, 1]` interval that matters for quadrature.

/// Evaluates the Legendre polynomial `P_n(x)` by the three-term recurrence.
///
/// `P_0(x) = 1`, `P_1(x) = x`,
/// `(k + 1) P_{k+1}(x) = (2k + 1) x P_k(x) - k P_{k-1}(x)`.
pub fn legendre(n: usize, x: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => x,
        _ => {
            let mut pkm1 = 1.0;
            let mut pk = x;
            for k in 1..n {
                let kf = k as f64;
                let pkp1 = ((2.0 * kf + 1.0) * x * pk - kf * pkm1) / (kf + 1.0);
                pkm1 = pk;
                pk = pkp1;
            }
            pk
        }
    }
}

/// Evaluates `P_n(x)` and its first derivative `P'_n(x)` together.
///
/// The derivative uses the identity
/// `(1 - x²) P'_n(x) = n (P_{n-1}(x) - x P_n(x))`,
/// rearranged to avoid the singularity at `x = ±1` by falling back to the
/// closed form `P'_n(±1) = ±1^{n-1} n (n + 1) / 2` at the endpoints.
pub fn legendre_and_deriv(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    if n == 1 {
        return (x, 1.0);
    }
    let mut pkm1 = 1.0;
    let mut pk = x;
    for k in 1..n {
        let kf = k as f64;
        let pkp1 = ((2.0 * kf + 1.0) * x * pk - kf * pkm1) / (kf + 1.0);
        pkm1 = pk;
        pk = pkp1;
    }
    let denom = 1.0 - x * x;
    let deriv = if denom.abs() > 1e-12 {
        (n as f64) * (pkm1 - x * pk) / denom
    } else {
        // Endpoint closed form: P'_n(1) = n(n+1)/2, P'_n(-1) = (-1)^{n-1} n(n+1)/2.
        let magnitude = (n as f64) * (n as f64 + 1.0) / 2.0;
        if x > 0.0 {
            magnitude
        } else if n.is_multiple_of(2) {
            -magnitude
        } else {
            magnitude
        }
    };
    (pk, deriv)
}

/// Evaluates the *second* derivative of `P_n` via the Legendre ODE
/// `(1 - x²) P''_n = 2 x P'_n - n (n + 1) P_n`, valid for `|x| < 1`.
pub fn legendre_second_deriv(n: usize, x: f64) -> f64 {
    let (p, dp) = legendre_and_deriv(n, x);
    let denom = 1.0 - x * x;
    debug_assert!(denom.abs() > 1e-12, "second derivative via ODE is singular at the endpoints");
    (2.0 * x * dp - (n as f64) * (n as f64 + 1.0) * p) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn low_order_closed_forms() {
        for &x in &[-1.0, -0.7, -0.25, 0.0, 0.3, 0.99, 1.0] {
            assert_close(legendre(0, x), 1.0, 1e-15);
            assert_close(legendre(1, x), x, 1e-15);
            assert_close(legendre(2, x), 0.5 * (3.0 * x * x - 1.0), 1e-14);
            assert_close(legendre(3, x), 0.5 * (5.0 * x * x * x - 3.0 * x), 1e-14);
            let x2 = x * x;
            assert_close(legendre(4, x), (35.0 * x2 * x2 - 30.0 * x2 + 3.0) / 8.0, 1e-13);
        }
    }

    #[test]
    fn endpoint_values() {
        // P_n(1) = 1, P_n(-1) = (-1)^n for all n.
        for n in 0..20 {
            assert_close(legendre(n, 1.0), 1.0, 1e-12);
            let expected = if n % 2 == 0 { 1.0 } else { -1.0 };
            assert_close(legendre(n, -1.0), expected, 1e-12);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for n in 1..12 {
            for &x in &[-0.9, -0.5, -0.1, 0.2, 0.6, 0.95] {
                let (_, dp) = legendre_and_deriv(n, x);
                let fd = (legendre(n, x + h) - legendre(n, x - h)) / (2.0 * h);
                assert_close(dp, fd, 1e-6 * (1.0 + dp.abs()));
            }
        }
    }

    #[test]
    fn derivative_endpoints_closed_form() {
        for n in 1..15 {
            let (_, dp1) = legendre_and_deriv(n, 1.0);
            assert_close(dp1, (n * (n + 1)) as f64 / 2.0, 1e-9);
            let (_, dpm1) = legendre_and_deriv(n, -1.0);
            let sign = if n % 2 == 0 { -1.0 } else { 1.0 };
            assert_close(dpm1, sign * (n * (n + 1)) as f64 / 2.0, 1e-9);
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference() {
        let h = 1e-5;
        for n in 2..10 {
            for &x in &[-0.8, -0.3, 0.0, 0.4, 0.85] {
                let d2 = legendre_second_deriv(n, x);
                let fd = (legendre(n, x + h) - 2.0 * legendre(n, x) + legendre(n, x - h)) / (h * h);
                assert_close(d2, fd, 1e-4 * (1.0 + d2.abs()));
            }
        }
    }
}
