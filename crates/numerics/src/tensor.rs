//! Tensor-product kernels on `n × n × n` nodal fields.
//!
//! A hexahedral dG element stores one value per node; nodes are indexed
//! `(i, j, k)` with `i` fastest (x-direction). Applying a 1-D operator along
//! one axis is the computational core of the *Volume* kernel: for each of
//! the `n²` lines in the chosen direction, a dense `n × n` mat-vec.
//!
//! The layout convention `idx = i + n*j + n*n*k` is shared by every crate in
//! the workspace, including the Wave-PIM block layout where node `idx` of an
//! element owns row `idx` of a memory block (Fig. 5 of the paper).

use crate::lagrange::DiffMatrix;

/// Axis selector for tensor operations. `X` varies fastest in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    X,
    Y,
    Z,
}

impl Axis {
    /// All three axes in `X, Y, Z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The 0/1/2 index of the axis.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

/// Linear node index for `(i, j, k)` in an `n³` element.
#[inline]
pub fn node_index(n: usize, i: usize, j: usize, k: usize) -> usize {
    debug_assert!(i < n && j < n && k < n);
    i + n * (j + n * k)
}

/// Inverse of [`node_index`].
#[inline]
pub fn node_coords(n: usize, idx: usize) -> (usize, usize, usize) {
    debug_assert!(idx < n * n * n);
    (idx % n, (idx / n) % n, idx / (n * n))
}

/// Applies the differentiation matrix along `axis`: `out = (D ⊗ I ⊗ I) v`
/// (with the Kronecker position matching the axis). `v` and `out` must both
/// have length `n³` and must not alias.
pub fn apply_along_axis(d: &DiffMatrix, axis: Axis, n: usize, v: &[f64], out: &mut [f64]) {
    debug_assert_eq!(d.n(), n);
    debug_assert_eq!(v.len(), n * n * n);
    debug_assert_eq!(out.len(), n * n * n);
    match axis {
        Axis::X => {
            // Lines are contiguous runs of n values.
            for line in 0..n * n {
                let base = line * n;
                for i in 0..n {
                    let row = d.row(i);
                    let mut acc = 0.0;
                    for j in 0..n {
                        acc += row[j] * v[base + j];
                    }
                    out[base + i] = acc;
                }
            }
        }
        Axis::Y => {
            let stride = n;
            for k in 0..n {
                for i in 0..n {
                    let base = i + n * n * k;
                    for jj in 0..n {
                        let row = d.row(jj);
                        let mut acc = 0.0;
                        for j in 0..n {
                            acc += row[j] * v[base + j * stride];
                        }
                        out[base + jj * stride] = acc;
                    }
                }
            }
        }
        Axis::Z => {
            let stride = n * n;
            for j in 0..n {
                for i in 0..n {
                    let base = i + n * j;
                    for kk in 0..n {
                        let row = d.row(kk);
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += row[k] * v[base + k * stride];
                        }
                        out[base + kk * stride] = acc;
                    }
                }
            }
        }
    }
}

/// Iterator over the `n²` node indices of one face of an `n³` element.
///
/// `axis` is the face normal direction and `plus` selects the `+1` (last
/// plane) or `-1` (first plane) face. Indices are produced in the natural
/// order of the two tangential axes (lower axis fastest), which both sides
/// of a conforming face share on a structured mesh.
pub fn face_nodes(n: usize, axis: Axis, plus: bool) -> impl Iterator<Item = usize> {
    let fixed = if plus { n - 1 } else { 0 };
    (0..n * n).map(move |t| {
        let (a, b) = (t % n, t / n);
        match axis {
            Axis::X => node_index(n, fixed, a, b),
            Axis::Y => node_index(n, a, fixed, b),
            Axis::Z => node_index(n, a, b, fixed),
        }
    })
}

/// Weighted inner product `Σ w_i w_j w_k u[ijk] v[ijk]` over the element —
/// the discrete (reference-element) L² inner product used for energy
/// accounting in the solver tests.
pub fn weighted_inner_product(n: usize, w: &[f64], u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), n);
    let mut acc = 0.0;
    for k in 0..n {
        for j in 0..n {
            let wjk = w[j] * w[k];
            let base = n * (j + n * k);
            for i in 0..n {
                acc += w[i] * wjk * u[base + i] * v[base + i];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gll::GllRule;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    fn nodal_field(n: usize, rule: &GllRule, f: impl Fn(f64, f64, f64) -> f64) -> Vec<f64> {
        let p = rule.points();
        let mut v = vec![0.0; n * n * n];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    v[node_index(n, i, j, k)] = f(p[i], p[j], p[k]);
                }
            }
        }
        v
    }

    #[test]
    fn node_index_round_trips() {
        let n = 6;
        for idx in 0..n * n * n {
            let (i, j, k) = node_coords(n, idx);
            assert_eq!(node_index(n, i, j, k), idx);
        }
    }

    #[test]
    fn derivative_along_each_axis_is_exact_for_polynomials() {
        let n = 5;
        let rule = GllRule::new(n);
        let d = DiffMatrix::for_gll(&rule);
        // f = x³ + 2y² - 3z + xyz; gradients are degree ≤ n-1 per axis.
        let f = |x: f64, y: f64, z: f64| x.powi(3) + 2.0 * y * y - 3.0 * z + x * y * z;
        let v = nodal_field(n, &rule, f);
        let mut out = vec![0.0; n * n * n];

        apply_along_axis(&d, Axis::X, n, &v, &mut out);
        let p = rule.points();
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let exact = 3.0 * p[i] * p[i] + p[j] * p[k];
                    assert_close(out[node_index(n, i, j, k)], exact, 1e-10);
                }
            }
        }

        apply_along_axis(&d, Axis::Y, n, &v, &mut out);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let exact = 4.0 * p[j] + p[i] * p[k];
                    assert_close(out[node_index(n, i, j, k)], exact, 1e-10);
                }
            }
        }

        apply_along_axis(&d, Axis::Z, n, &v, &mut out);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let exact = -3.0 + p[i] * p[j];
                    assert_close(out[node_index(n, i, j, k)], exact, 1e-10);
                }
            }
        }
    }

    #[test]
    fn face_nodes_have_correct_plane_coordinate() {
        let n = 4;
        for axis in Axis::ALL {
            for plus in [false, true] {
                let expected = if plus { n - 1 } else { 0 };
                let nodes: Vec<usize> = face_nodes(n, axis, plus).collect();
                assert_eq!(nodes.len(), n * n);
                for idx in nodes {
                    let (i, j, k) = node_coords(n, idx);
                    let fixed = match axis {
                        Axis::X => i,
                        Axis::Y => j,
                        Axis::Z => k,
                    };
                    assert_eq!(fixed, expected);
                }
            }
        }
    }

    #[test]
    fn face_nodes_are_unique() {
        let n = 5;
        for axis in Axis::ALL {
            let mut nodes: Vec<usize> = face_nodes(n, axis, true).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), n * n);
        }
    }

    #[test]
    fn opposite_faces_align_tangentially() {
        // Node t of the +face of one element must coincide (tangentially)
        // with node t of the -face of its neighbor: both iterators must
        // produce the same tangential coordinates in the same order.
        let n = 4;
        for axis in Axis::ALL {
            let plus: Vec<_> = face_nodes(n, axis, true).collect();
            let minus: Vec<_> = face_nodes(n, axis, false).collect();
            for (pi, mi) in plus.iter().zip(&minus) {
                let (pa, pb, pc) = node_coords(n, *pi);
                let (ma, mb, mc) = node_coords(n, *mi);
                match axis {
                    Axis::X => assert_eq!((pb, pc), (mb, mc)),
                    Axis::Y => assert_eq!((pa, pc), (ma, mc)),
                    Axis::Z => assert_eq!((pa, pb), (ma, mb)),
                }
            }
        }
    }

    #[test]
    fn weighted_inner_product_integrates_constants() {
        let n = 6;
        let rule = GllRule::new(n);
        let ones = vec![1.0; n * n * n];
        // ∫∫∫ 1 over [-1,1]³ = 8.
        let val = weighted_inner_product(n, rule.weights(), &ones, &ones);
        assert_close(val, 8.0, 1e-11);
    }

    #[test]
    fn weighted_inner_product_is_symmetric_and_positive() {
        let n = 4;
        let rule = GllRule::new(n);
        let u = nodal_field(n, &rule, |x, y, z| x + y * z);
        let v = nodal_field(n, &rule, |x, y, z| x * x - z + y);
        let uv = weighted_inner_product(n, rule.weights(), &u, &v);
        let vu = weighted_inner_product(n, rule.weights(), &v, &u);
        assert_close(uv, vu, 1e-12);
        let uu = weighted_inner_product(n, rule.weights(), &u, &u);
        assert!(uu > 0.0);
    }
}
