//! A minimal 3-vector shared by the mesh and solver crates.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A 3-component vector of `f64`, used for coordinates, velocities and
/// face normals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Unit vector along the given axis index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn unit(axis: usize) -> Self {
        match axis {
            0 => Self::new(1.0, 0.0, 0.0),
            1 => Self::new(0.0, 1.0, 0.0),
            2 => Self::new(0.0, 0.0, 1.0),
            _ => panic!("axis index must be 0, 1 or 2"),
        }
    }

    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Component access by axis index.
    #[inline]
    pub fn component(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis index must be 0, 1 or 2"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.0);
        assert_eq!(a + b, Vec3::new(1.5, 2.0, 2.0));
        assert_eq!(a - b, Vec3::new(0.5, -6.0, 4.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, -4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, 2.0, -3.0));
        assert_eq!(a + Vec3::ZERO, a);
    }

    #[test]
    fn dot_and_norm() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.dot(a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(Vec3::new(0.0, 0.0, 7.0)), 0.0);
    }

    #[test]
    fn units_and_components() {
        for axis in 0..3 {
            let u = Vec3::unit(axis);
            assert_eq!(u.component(axis), 1.0);
            assert_eq!(u.norm(), 1.0);
            for other in 0..3 {
                if other != axis {
                    assert_eq!(u.component(other), 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "axis index")]
    fn unit_rejects_bad_axis() {
        let _ = Vec3::unit(3);
    }
}
