//! Gauss-Legendre-Lobatto (GLL) quadrature rules.
//!
//! A GLL rule with `n` points on `[-1, 1]` includes both endpoints and
//! integrates polynomials up to degree `2n - 3` exactly. The interior
//! points are the roots of `P'_{n-1}(x)`; the weights are
//! `w_i = 2 / (n (n - 1) P_{n-1}(x_i)²)`.
//!
//! These are the *GLL Point* and *GLL Weight* constants of Table 1 in the
//! Wave-PIM paper: per-element constants that the PIM data layout stores in
//! the constants rows of each memory block (Fig. 5).

use crate::legendre::{legendre, legendre_and_deriv, legendre_second_deriv};
use crate::{NEWTON_MAX_ITER, NEWTON_TOL};

/// A GLL quadrature rule: `n` collocation points with weights on `[-1, 1]`.
///
/// ```
/// use wavesim_numerics::gll::GllRule;
///
/// let rule = GllRule::new(8); // the paper's 8-point (512-node) element
/// assert_eq!(rule.points().first(), Some(&-1.0));
/// assert_eq!(rule.points().last(), Some(&1.0));
/// // Integrates x² over [-1, 1] exactly.
/// assert!((rule.integrate(|x| x * x) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GllRule {
    points: Vec<f64>,
    weights: Vec<f64>,
}

impl GllRule {
    /// Builds the `n`-point GLL rule. `n` must be at least 2 (the endpoints
    /// are always included).
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a GLL rule needs at least the two endpoints");
        let mut points = vec![0.0; n];
        let mut weights = vec![0.0; n];
        points[0] = -1.0;
        points[n - 1] = 1.0;

        // Interior points: roots of P'_{n-1}. Seed Newton with
        // Chebyshev-Gauss-Lobatto points, which interlace the GLL points
        // closely enough for guaranteed convergence.
        let degree = n - 1;
        #[allow(clippy::needless_range_loop)]
        for i in 1..n - 1 {
            let mut x = -(std::f64::consts::PI * i as f64 / degree as f64).cos();
            for _ in 0..NEWTON_MAX_ITER {
                let (_, dp) = legendre_and_deriv(degree, x);
                let d2p = legendre_second_deriv(degree, x);
                let step = dp / d2p;
                x -= step;
                if step.abs() < NEWTON_TOL {
                    break;
                }
            }
            points[i] = x;
        }
        // Enforce exact symmetry: the rule is symmetric about 0 and small
        // asymmetries from Newton round-off would otherwise leak into the
        // differentiation matrix.
        for i in 0..n / 2 {
            let avg = 0.5 * (points[i] - points[n - 1 - i]);
            points[i] = avg;
            points[n - 1 - i] = -avg;
        }
        if n % 2 == 1 {
            points[n / 2] = 0.0;
        }

        let nf = n as f64;
        for i in 0..n {
            let p = legendre(degree, points[i]);
            weights[i] = 2.0 / (nf * (nf - 1.0) * p * p);
        }
        Self { points, weights }
    }

    /// Number of points in the rule.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the rule is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The collocation points in ascending order, `x_0 = -1 … x_{n-1} = 1`.
    #[inline]
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The quadrature weights, positive and summing to 2.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrates `f` over `[-1, 1]` with this rule.
    pub fn integrate(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.points.iter().zip(&self.weights).map(|(&x, &w)| w * f(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    #[should_panic(expected = "at least the two endpoints")]
    fn rejects_n_below_two() {
        let _ = GllRule::new(1);
    }

    #[test]
    fn two_point_rule_is_trapezoid() {
        let rule = GllRule::new(2);
        assert_eq!(rule.points(), &[-1.0, 1.0]);
        assert_close(rule.weights()[0], 1.0, 1e-15);
        assert_close(rule.weights()[1], 1.0, 1e-15);
    }

    #[test]
    fn three_point_rule_closed_form() {
        let rule = GllRule::new(3);
        assert_close(rule.points()[1], 0.0, 1e-15);
        assert_close(rule.weights()[0], 1.0 / 3.0, 1e-14);
        assert_close(rule.weights()[1], 4.0 / 3.0, 1e-14);
        assert_close(rule.weights()[2], 1.0 / 3.0, 1e-14);
    }

    #[test]
    fn four_point_rule_closed_form() {
        let rule = GllRule::new(4);
        let x = (1.0f64 / 5.0).sqrt();
        assert_close(rule.points()[1], -x, 1e-13);
        assert_close(rule.points()[2], x, 1e-13);
        assert_close(rule.weights()[0], 1.0 / 6.0, 1e-13);
        assert_close(rule.weights()[1], 5.0 / 6.0, 1e-13);
    }

    #[test]
    fn eight_point_rule_matches_reference() {
        // Reference values for the 8-point GLL rule (the paper's 512-node
        // element is 8×8×8), from Abramowitz & Stegun style tabulations.
        let rule = GllRule::new(8);
        let expected_points = [
            -1.0,
            -0.871_740_148_509_606_6,
            -0.591_700_181_433_142_3,
            -0.209_299_217_902_478_87,
            0.209_299_217_902_478_87,
            0.591_700_181_433_142_3,
            0.871_740_148_509_606_6,
            1.0,
        ];
        let expected_weights = [
            0.035_714_285_714_285_71,
            0.210_704_227_143_506_44,
            0.341_122_692_483_504_4,
            0.412_458_794_658_703_9,
            0.412_458_794_658_703_9,
            0.341_122_692_483_504_4,
            0.210_704_227_143_506_44,
            0.035_714_285_714_285_71,
        ];
        for i in 0..8 {
            assert_close(rule.points()[i], expected_points[i], 1e-12);
            assert_close(rule.weights()[i], expected_weights[i], 1e-12);
        }
    }

    #[test]
    fn weights_sum_to_two_and_are_positive() {
        for n in 2..=16 {
            let rule = GllRule::new(n);
            let sum: f64 = rule.weights().iter().sum();
            assert_close(sum, 2.0, 1e-12);
            assert!(rule.weights().iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    fn points_sorted_and_symmetric() {
        for n in 2..=16 {
            let rule = GllRule::new(n);
            let pts = rule.points();
            for w in pts.windows(2) {
                assert!(w[0] < w[1], "points must strictly increase");
            }
            for i in 0..n {
                assert_close(pts[i], -pts[n - 1 - i], 1e-14);
            }
        }
    }

    #[test]
    fn integrates_polynomials_exactly_up_to_2n_minus_3() {
        for n in 2..=12 {
            let rule = GllRule::new(n);
            for degree in 0..=(2 * n - 3) {
                let integral = rule.integrate(|x| x.powi(degree as i32));
                let exact = if degree % 2 == 1 { 0.0 } else { 2.0 / (degree as f64 + 1.0) };
                assert_close(integral, exact, 1e-11);
            }
        }
    }

    #[test]
    fn quadrature_converges_on_smooth_function() {
        // ∫_{-1}^{1} e^x dx = e - 1/e.
        let exact = std::f64::consts::E - 1.0 / std::f64::consts::E;
        let coarse = (GllRule::new(3).integrate(f64::exp) - exact).abs();
        let fine = (GllRule::new(8).integrate(f64::exp) - exact).abs();
        assert!(fine < coarse);
        assert!(fine < 1e-10);
    }
}
