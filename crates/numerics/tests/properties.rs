//! Property-based tests for the numerics crate.

use proptest::prelude::*;
use wavesim_numerics::gll::GllRule;
use wavesim_numerics::lagrange::{barycentric_interpolate, barycentric_weights, DiffMatrix};
use wavesim_numerics::tensor::{apply_along_axis, node_index, Axis};

proptest! {
    /// GLL quadrature integrates random polynomials of admissible degree
    /// exactly.
    #[test]
    fn gll_exact_on_random_polynomials(
        n in 3usize..10,
        coeffs in proptest::collection::vec(-5.0f64..5.0, 1..8),
    ) {
        let rule = GllRule::new(n);
        let max_degree = (2 * n - 3).min(coeffs.len() - 1);
        let coeffs = &coeffs[..=max_degree];
        let poly = |x: f64| {
            coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
        };
        let integral = rule.integrate(poly);
        let exact: f64 = coeffs
            .iter()
            .enumerate()
            .map(|(d, &c)| if d % 2 == 0 { 2.0 * c / (d as f64 + 1.0) } else { 0.0 })
            .sum();
        prop_assert!((integral - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    /// The barycentric interpolant of polynomial data is exact anywhere in
    /// the interval, not just at nodes.
    #[test]
    fn interpolation_exact_for_polynomials(
        n in 4usize..10,
        coeffs in proptest::collection::vec(-3.0f64..3.0, 3),
        x in -1.0f64..1.0,
    ) {
        let rule = GllRule::new(n);
        let w = barycentric_weights(rule.points());
        let poly = |x: f64| coeffs[0] + coeffs[1] * x + coeffs[2] * x * x;
        let values: Vec<f64> = rule.points().iter().map(|&p| poly(p)).collect();
        let interp = barycentric_interpolate(rule.points(), &w, &values, x);
        prop_assert!((interp - poly(x)).abs() < 1e-10);
    }

    /// Differentiation is linear: D(a·u + b·v) = a·Du + b·Dv.
    #[test]
    fn differentiation_is_linear(
        n in 2usize..8,
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let rule = GllRule::new(n);
        let d = DiffMatrix::for_gll(&rule);
        let u: Vec<f64> = (0..n).map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f64 / 500.0 - 1.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i as u64 * 40503 + seed * 7) % 1000) as f64 / 500.0 - 1.0).collect();
        let combo: Vec<f64> = u.iter().zip(&v).map(|(&x, &y)| a * x + b * y).collect();
        let mut du = vec![0.0; n];
        let mut dv = vec![0.0; n];
        let mut dc = vec![0.0; n];
        d.apply(&u, &mut du);
        d.apply(&v, &mut dv);
        d.apply(&combo, &mut dc);
        for i in 0..n {
            let expect = a * du[i] + b * dv[i];
            prop_assert!((dc[i] - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        }
    }

    /// Tensor derivatives along distinct axes commute (mixed partials of a
    /// nodal field agree regardless of order).
    #[test]
    fn tensor_axis_derivatives_commute(n in 2usize..6, seed in 0u64..100) {
        let rule = GllRule::new(n);
        let d = DiffMatrix::for_gll(&rule);
        let total = n * n * n;
        let field: Vec<f64> = (0..total)
            .map(|i| (((i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed)) % 2048) as f64 / 1024.0 - 1.0)
            .collect();
        let mut tmp1 = vec![0.0; total];
        let mut xy = vec![0.0; total];
        let mut tmp2 = vec![0.0; total];
        let mut yx = vec![0.0; total];
        apply_along_axis(&d, Axis::X, n, &field, &mut tmp1);
        apply_along_axis(&d, Axis::Y, n, &tmp1, &mut xy);
        apply_along_axis(&d, Axis::Y, n, &field, &mut tmp2);
        apply_along_axis(&d, Axis::X, n, &tmp2, &mut yx);
        for idx in 0..total {
            prop_assert!((xy[idx] - yx[idx]).abs() < 1e-8 * (1.0 + xy[idx].abs()));
        }
    }

    /// node_index is a bijection onto 0..n³.
    #[test]
    fn node_index_is_bijective(n in 1usize..8) {
        let mut seen = vec![false; n * n * n];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let idx = node_index(n, i, j, k);
                    prop_assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
