//! Cycle-level digital processing-in-memory simulator.
//!
//! Models the Wave-PIM hardware of §4 of the paper:
//!
//! * [`params`] — circuit constants: Table 4 basic-operation energy/time,
//!   Table 3 component powers, calibrated bit-serial FP32 cycle counts and
//!   the 28 nm → 12 nm process-scaling factors,
//! * [`nor`] — MAGIC-style NOR netlists: the in-memory full adder, ripple
//!   adder and shift-add multiplier, executed gate-by-gate with cycle
//!   counting (§2.3: "arithmetic operations like addition and
//!   multiplication are achieved by performing NOR operations
//!   sequentially"),
//! * [`block`] — the memory block: 1K×1K memristor crossbar with row
//!   buffer, row-parallel bit-serial arithmetic and energy metering,
//! * [`interconnect`] — the H-tree and Bus inter-block networks of §4.2,
//!   with routing, conflict-aware scheduling and energy accounting,
//! * [`energy`] — the dynamic + static energy ledger,
//! * [`host`] — the ARM Cortex-A72 host model that sends instructions and
//!   precomputes sqrt/inverse for the look-up tables,
//! * [`chip`] — the assembled chip: tiles of 256 blocks, central
//!   controller, functional execution of `pim-isa` instruction streams,
//! * [`link`] — the point-to-point inter-chip link the cluster runtime
//!   charges halo-exchange traffic against.

pub mod block;
pub mod chip;
pub mod energy;
pub mod host;
pub mod interconnect;
pub mod link;
pub mod nor;
pub mod params;

pub use block::MemBlock;
pub use chip::{ChipConfig, ExecReport, PimChip};
pub use energy::EnergyLedger;
pub use interconnect::{BusNetwork, HTreeNetwork, Interconnect, InterconnectKind, Transfer};
pub use link::InterChipLink;
pub use params::{ChipCapacity, ProcessNode};
