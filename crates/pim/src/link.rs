//! The inter-chip link model for multi-chip cluster execution.
//!
//! The paper's chips are evaluated standalone; scaling past one chip
//! (§6, "larger problem sizes") needs boundary data to cross a
//! chip-to-chip link every RK stage. [`InterChipLink`] is the analytic
//! cost model for one such point-to-point link: a fixed per-message
//! latency plus a bandwidth term, and a per-byte transfer energy.
//!
//! Each endpoint of a message is charged on its own chip via
//! [`crate::PimChip::link_transfer`]: the message serializes on the
//! chip's off-chip port (the same resource HBM2 DMAs use), its energy
//! lands in `ledger.offchip`, and the span is traced on the off-chip
//! lane — so cluster traces reconcile with the per-chip ledgers exactly
//! like single-chip runs.

use crate::params;

/// A point-to-point inter-chip link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterChipLink {
    /// Sustained bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Fixed per-message latency, seconds.
    pub latency: f64,
    /// Transfer energy charged per byte *per endpoint*, joules.
    pub energy_per_byte: f64,
}

impl Default for InterChipLink {
    fn default() -> Self {
        Self {
            bandwidth: params::INTERCHIP_BANDWIDTH,
            latency: params::INTERCHIP_LATENCY,
            energy_per_byte: params::INTERCHIP_ENERGY_PER_BYTE,
        }
    }
}

impl InterChipLink {
    /// Seconds one endpoint is occupied by a `bytes`-sized message.
    pub fn duration(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Joules charged to one endpoint for a `bytes`-sized message.
    pub fn energy(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_params() {
        let l = InterChipLink::default();
        assert_eq!(l.bandwidth, params::INTERCHIP_BANDWIDTH);
        assert_eq!(l.latency, params::INTERCHIP_LATENCY);
        assert_eq!(l.energy_per_byte, params::INTERCHIP_ENERGY_PER_BYTE);
    }

    #[test]
    fn duration_has_latency_floor_and_bandwidth_slope() {
        let l = InterChipLink::default();
        assert!((l.duration(0) - l.latency).abs() < 1e-18);
        let big = 1u64 << 30;
        let d = l.duration(big);
        assert!((d - l.latency - big as f64 / l.bandwidth).abs() < 1e-12);
        assert!(d > l.duration(big / 2));
    }

    #[test]
    fn link_is_slower_and_costlier_than_hbm2() {
        // The premise of halo locality: crossing chips must be worse than
        // staying on-package.
        let l = InterChipLink::default();
        assert!(l.bandwidth < params::OFFCHIP_BANDWIDTH);
        assert!(
            l.energy_per_byte > params::OFFCHIP_POWER / params::OFFCHIP_BANDWIDTH,
            "per-byte link energy should exceed the HBM2 figure"
        );
    }

    #[test]
    fn energy_scales_linearly() {
        let l = InterChipLink::default();
        assert!((l.energy(2048) - 2.0 * l.energy(1024)).abs() < 1e-18);
    }
}
