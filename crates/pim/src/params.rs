//! Hardware constants of the Wave-PIM design.
//!
//! Everything in this module is traceable to the paper:
//!
//! * Table 4 — basic memristor operation energy and time (originally from
//!   FloatPIM),
//! * Table 3 — per-component power of the 2 GB chip (originally from
//!   NVSim/DUAL + PrimeTime),
//! * Table 2 — chip-level figures (900 MHz clock, 900 GB/s HBM2, four
//!   capacities 512 MB / 2 GB / 8 GB / 16 GB),
//! * §7.3 — 28 nm → 12 nm scaling: ×3.81 performance, ×2.0 energy.
//!
//! The bit-serial FP32 cycle counts are *calibrated*: the paper quotes the
//! arithmetic latency only through its throughput figure (Table 2 lists
//! ≈7.25 TFLOPS for the 2 GB chip with 16 Mi parallel rows under a 50/50
//! add/mul mix). With `T_NOR = 1.1 ns`, that pins the average FP op at
//! 2,104 NOR cycles; we split it 1,400 (add) / 2,808 (mul), the ~1:2
//! ratio of the underlying MAGIC netlists (see [`crate::nor`]).
//!
//! These constants price *simulated hardware* cost only. The functional
//! model ([`crate::MemBlock`]) stores and computes cell values in `f64`
//! so PIM runs can be compared against the native dG solver at 1e-12 —
//! every op is still charged as the paper's 32-bit bit-serial sequence,
//! and neither the stored word width nor the host-side memory layout
//! (column-major planes since the word-parallel engine) enters any
//! cycle, joule, or row-activation figure here.

use serde::{Deserialize, Serialize};

// ---- Table 4: basic operation energy and time ----

/// Energy to SET one memristor cell (`E_set`), joules.
pub const E_SET: f64 = 23.8e-15;
/// Energy to RESET one memristor cell (`E_reset`), joules.
pub const E_RESET: f64 = 0.32e-15;
/// Energy of one NOR cell operation (`E_NOR`), joules.
pub const E_NOR: f64 = 0.29e-15;
/// Energy of one row search/read (`E_search`), joules.
pub const E_SEARCH: f64 = 5.34e-12;
/// Latency of one NOR step (`T_NOR`), seconds.
pub const T_NOR: f64 = 1.1e-9;
/// Latency of one search/read (`T_search`), seconds.
pub const T_SEARCH: f64 = 1.5e-9;

// ---- Calibrated bit-serial FP32 latencies (NOR cycles) ----

/// NOR cycles for one row-parallel FP32 addition.
pub const FP32_ADD_CYCLES: u64 = 1_400;
/// NOR cycles for one row-parallel FP32 multiplication.
pub const FP32_MUL_CYCLES: u64 = 2_808;
/// NOR cycles for a fused multiply-accumulate (mul + short add chain).
pub const FP32_MAC_CYCLES: u64 = FP32_MUL_CYCLES + FP32_ADD_CYCLES;
/// NOR cycles to negate (flip sign bit, copy through).
pub const FP32_NEG_CYCLES: u64 = 33;
/// NOR cycles to move a 32-bit word to another column (2 NOR per bit:
/// invert, invert back).
pub const FP32_MOV_CYCLES: u64 = 64;

/// Active cell-columns toggled per row by one FP32 op — used to convert
/// cycle counts into `E_NOR` energy. A bit-serial FP op touches the 32
/// operand bits plus carry/scratch columns each cycle; FloatPIM-style
/// mappings keep ~2 active cells per NOR step.
pub const CELLS_PER_NOR_STEP: f64 = 2.0;

// ---- Table 2 chip-level figures ----

/// Controller / interconnect clock (Table 2: 900 MHz).
pub const CLOCK_HZ: f64 = 900.0e6;
/// Off-chip HBM2 bandwidth, bytes/second (Table 2: 900 GB/s).
pub const OFFCHIP_BANDWIDTH: f64 = 900.0e9;
/// Off-chip HBM2 DRAM power, watts (§7.1, from [34]).
pub const OFFCHIP_POWER: f64 = 36.91;

// ---- Inter-chip link (cluster runtime) ----
//
// The paper evaluates single chips; the cluster runtime extends the §6
// scalability axis across devices. The link figures model a SerDes-style
// chip-to-chip interconnect: far slower and costlier per byte than the
// on-package HBM2 path above, which is what makes halo locality matter.

/// Inter-chip link bandwidth, bytes/second (64 GB/s, a PCIe 5.0 x16-class
/// or small NVLink-class point-to-point link).
pub const INTERCHIP_BANDWIDTH: f64 = 64.0e9;
/// Per-message inter-chip latency, seconds (500 ns: SerDes + protocol,
/// an order above DRAM access).
pub const INTERCHIP_LATENCY: f64 = 500.0e-9;
/// Inter-chip transfer energy, joules per byte (~10 pJ/bit SerDes class).
pub const INTERCHIP_ENERGY_PER_BYTE: f64 = 80.0e-12;

// ---- Table 3: component powers (2 GB chip) ----

/// One memory block: crossbar 6.14 mW + sense amps 2.38 mW + decoder
/// 0.31 mW.
pub const BLOCK_POWER: f64 = 8.83e-3;
/// Tile memory array power as reported (256 blocks; Table 3 lists the
/// managed/duty-cycled figure rather than 256 × block).
pub const TILE_MEMORY_POWER: f64 = 1.57;
/// All 85 H-tree switches of one 256-block tile.
pub const TILE_HTREE_POWER: f64 = 107.13e-3;
/// The single bus switch of one tile.
pub const TILE_BUS_POWER: f64 = 17.2e-3;
/// One 32 MB tile, H-tree variant (Table 3: 1.68 W).
pub const TILE_POWER_HTREE: f64 = 1.68;
/// One 32 MB tile, bus variant (Table 3: 1.59 W).
pub const TILE_POWER_BUS: f64 = 1.59;
/// The central controller (Table 3: 6.41 W).
pub const CONTROLLER_POWER: f64 = 6.41;
/// The ARM Cortex-A72 host (Table 3: 3.06 W).
pub const HOST_POWER: f64 = 3.06;

/// Bytes per memory tile (256 blocks × 128 KiB = 32 MiB).
pub const TILE_BYTES: u64 = 32 * 1024 * 1024;

/// Interconnect link width in bits per controller cycle. Calibrated so
/// the naive acoustic mapping's inter-element share of a stage lands on
/// the paper's Fig. 14 measurement (21.62% H-tree / 58.41% bus without
/// expansion): a 4-word interface transfer then occupies a switch for
/// ⌈128/12⌉ = 11 cycles, i.e. the instruction-driven switching of §4.2
/// (one memcpy instruction per hop) costs roughly ten controller cycles
/// per row-buffer move.
pub const LINK_BITS_PER_CYCLE: u64 = 12;

/// Energy per 32-bit word per switch hop, joules. Derived from the
/// per-switch power at full utilization: 1.26 mW / (900 MHz × 4 words per
/// cycle) ≈ 0.35 pJ per word-hop.
pub const HOP_ENERGY_PER_WORD: f64 = 0.35e-12;

// ---- Capacities and process scaling ----

/// The four evaluated PIM capacities (Tables 2/5, Figs. 11/12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipCapacity {
    Mb512,
    Gb2,
    Gb8,
    Gb16,
}

impl ChipCapacity {
    /// All four, smallest first.
    pub const ALL: [ChipCapacity; 4] =
        [ChipCapacity::Mb512, ChipCapacity::Gb2, ChipCapacity::Gb8, ChipCapacity::Gb16];

    /// Capacity in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            ChipCapacity::Mb512 => 512 << 20,
            ChipCapacity::Gb2 => 2 << 30,
            ChipCapacity::Gb8 => 8 << 30,
            ChipCapacity::Gb16 => 16 << 30,
        }
    }

    /// Number of 32 MB tiles.
    pub fn num_tiles(self) -> u64 {
        self.bytes() / TILE_BYTES
    }

    /// Number of 128 KiB memory blocks.
    pub fn num_blocks(self) -> u64 {
        self.num_tiles() * 256
    }

    /// Maximum row-level parallelism: every row of every block can compute
    /// simultaneously (§7.1: "2GB/1,024b = 16M").
    pub fn max_parallel_rows(self) -> u64 {
        self.bytes() * 8 / 1024
    }

    /// Name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            ChipCapacity::Mb512 => "512MB",
            ChipCapacity::Gb2 => "2GB",
            ChipCapacity::Gb8 => "8GB",
            ChipCapacity::Gb16 => "16GB",
        }
    }

    /// Static power of the whole PIM system (tiles + controller + host),
    /// watts, for the chosen interconnect, with every tile active.
    pub fn static_power(self, interconnect: crate::InterconnectKind) -> f64 {
        self.static_power_with_active(interconnect, self.num_tiles())
    }

    /// Static power with only `active_tiles` tiles in use: idle tiles
    /// drop to sleep-mode retention at [`IDLE_TILE_POWER_FRACTION`] of
    /// their active power (the resource-under-utilization effect behind
    /// §7.4's capacity/energy trade-off).
    pub fn static_power_with_active(
        self,
        interconnect: crate::InterconnectKind,
        active_tiles: u64,
    ) -> f64 {
        let tile = match interconnect {
            crate::InterconnectKind::HTree => TILE_POWER_HTREE,
            crate::InterconnectKind::Bus => TILE_POWER_BUS,
        };
        let total = self.num_tiles();
        let active = active_tiles.min(total);
        let idle = total - active;
        (active as f64 + idle as f64 * IDLE_TILE_POWER_FRACTION) * tile
            + CONTROLLER_POWER
            + HOST_POWER
    }
}

/// Fraction of a tile's power drawn in sleep-mode retention when no
/// element is mapped to it.
pub const IDLE_TILE_POWER_FRACTION: f64 = 0.5;

/// Process node of the evaluation: the PIM numbers are simulated at 28 nm;
/// §7.3 scales them to 12 nm to compare fairly with the 12/16 nm GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessNode {
    Nm28,
    Nm12,
}

impl ProcessNode {
    /// Performance multiplier relative to 28 nm (§7.3: 3.81×).
    pub fn perf_scale(self) -> f64 {
        match self {
            ProcessNode::Nm28 => 1.0,
            ProcessNode::Nm12 => 3.81,
        }
    }

    /// Energy divisor relative to 28 nm (§7.3: 2.0×).
    pub fn energy_scale(self) -> f64 {
        match self {
            ProcessNode::Nm28 => 1.0,
            ProcessNode::Nm12 => 2.0,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ProcessNode::Nm28 => "28nm",
            ProcessNode::Nm12 => "12nm",
        }
    }
}

/// NOR cycles for one row-parallel ALU op.
pub fn alu_cycles(op: pim_isa::AluOp) -> u64 {
    match op {
        pim_isa::AluOp::Add | pim_isa::AluOp::Sub => FP32_ADD_CYCLES,
        pim_isa::AluOp::Mul => FP32_MUL_CYCLES,
        pim_isa::AluOp::Mac => FP32_MAC_CYCLES,
        pim_isa::AluOp::Neg => FP32_NEG_CYCLES,
        pim_isa::AluOp::Mov => FP32_MOV_CYCLES,
    }
}

/// Wall-clock seconds of `cycles` NOR steps.
pub fn nor_seconds(cycles: u64) -> f64 {
    cycles as f64 * T_NOR
}

/// Dynamic energy of a row-parallel ALU op over `rows` rows: every row
/// runs the same bit-serial sequence simultaneously.
pub fn alu_energy(op: pim_isa::AluOp, rows: u64) -> f64 {
    alu_cycles(op) as f64 * CELLS_PER_NOR_STEP * E_NOR * rows as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_and_tiles() {
        assert_eq!(ChipCapacity::Mb512.num_tiles(), 16);
        assert_eq!(ChipCapacity::Gb2.num_tiles(), 64);
        assert_eq!(ChipCapacity::Gb8.num_tiles(), 256);
        assert_eq!(ChipCapacity::Gb16.num_tiles(), 512);
        assert_eq!(ChipCapacity::Gb2.num_blocks(), 16384);
    }

    #[test]
    fn parallelism_matches_paper_figure() {
        // §7.1: "2GB/1,024b = 16M" parallel operations.
        assert_eq!(ChipCapacity::Gb2.max_parallel_rows(), 16 * 1024 * 1024);
    }

    #[test]
    fn calibrated_throughput_matches_table_2() {
        // 16 Mi rows, 50/50 add/mul mix: the 2 GB chip must land at the
        // paper's ≈7.25 TFLOPS.
        let rows = ChipCapacity::Gb2.max_parallel_rows() as f64;
        let avg_cycles = (FP32_ADD_CYCLES + FP32_MUL_CYCLES) as f64 / 2.0;
        let tflops = rows / (avg_cycles * T_NOR) / 1e12;
        assert!((tflops - 7.25).abs() < 0.15, "throughput {tflops} TFLOPS");
    }

    #[test]
    fn static_power_matches_table_3_total() {
        // Table 3: 2 GB chip totals 115.02 W (H-tree) / 109.25 W (bus).
        // Our roll-up gives 64×1.68 + 6.41 + 3.06 = 116.99 W; the paper's
        // printed total is 115.02 W — its own component rows do not sum to
        // its total either, so we accept a ±2.5 W band.
        let htree = ChipCapacity::Gb2.static_power(crate::InterconnectKind::HTree);
        let bus = ChipCapacity::Gb2.static_power(crate::InterconnectKind::Bus);
        assert!((htree - 115.02).abs() < 2.5, "H-tree power {htree}");
        assert!((bus - 109.25).abs() < 2.5, "bus power {bus}");
        assert!(htree > bus, "H-tree must burn more static power than the bus");
    }

    #[test]
    fn block_power_decomposition() {
        // Table 3: 6.14 + 2.38 + 0.31 = 8.83 mW.
        assert!((BLOCK_POWER - (6.14e-3 + 2.38e-3 + 0.31e-3)).abs() < 1e-9);
    }

    #[test]
    fn mul_is_about_twice_add() {
        let ratio = FP32_MUL_CYCLES as f64 / FP32_ADD_CYCLES as f64;
        assert!((1.8..2.4).contains(&ratio), "{ratio}");
    }

    #[test]
    fn process_scaling_matches_section_7_3() {
        assert_eq!(ProcessNode::Nm12.perf_scale(), 3.81);
        assert_eq!(ProcessNode::Nm12.energy_scale(), 2.0);
        assert_eq!(ProcessNode::Nm28.perf_scale(), 1.0);
    }

    #[test]
    fn alu_energy_scales_with_rows() {
        let one = alu_energy(pim_isa::AluOp::Add, 1);
        let many = alu_energy(pim_isa::AluOp::Add, 512);
        assert!((many / one - 512.0).abs() < 1e-9);
        assert!(alu_energy(pim_isa::AluOp::Mul, 1) > one);
    }
}
