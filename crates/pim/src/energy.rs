//! Energy accounting.
//!
//! The paper measures "the total power consumption of both host CPU and
//! accelerator" (§7.2). The ledger splits dynamic energy by mechanism so
//! the evaluation can attribute savings (e.g. Fig. 12's PIM-vs-GPU gap is
//! dominated by eliminated off-chip traffic), and adds static energy as
//! `power × elapsed time` at the end of a run.

use serde::{Deserialize, Serialize};

/// Dynamic + static energy in joules, split by mechanism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Bit-serial NOR computation inside blocks.
    pub compute: f64,
    /// Cell reads (search operations) into row buffers.
    pub reads: f64,
    /// Cell writes (set/reset) from row buffers, incl. broadcasts.
    pub writes: f64,
    /// Inter-block transfers through H-tree/bus switches.
    pub interconnect: f64,
    /// Off-chip HBM2 traffic.
    pub offchip: f64,
    /// Host CPU work (instruction dispatch, sqrt/inverse preprocessing).
    pub host: f64,
    /// Static (leakage + idle) energy of the whole system.
    pub static_energy: f64,
}

impl EnergyLedger {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.compute
            + self.reads
            + self.writes
            + self.interconnect
            + self.offchip
            + self.host
            + self.static_energy
    }

    /// Dynamic-only joules (everything but static).
    pub fn dynamic(&self) -> f64 {
        self.total() - self.static_energy
    }

    /// Adds another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.compute += other.compute;
        self.reads += other.reads;
        self.writes += other.writes;
        self.interconnect += other.interconnect;
        self.offchip += other.offchip;
        self.host += other.host;
        self.static_energy += other.static_energy;
    }

    /// Charges static energy for `seconds` at `watts`.
    pub fn charge_static(&mut self, watts: f64, seconds: f64) {
        debug_assert!(watts >= 0.0 && seconds >= 0.0);
        self.static_energy += watts * seconds;
    }

    /// Scales the whole ledger (used for process-node energy scaling and
    /// per-element → whole-mesh extrapolation).
    pub fn scaled(&self, by: f64) -> EnergyLedger {
        EnergyLedger {
            compute: self.compute * by,
            reads: self.reads * by,
            writes: self.writes * by,
            interconnect: self.interconnect * by,
            offchip: self.offchip * by,
            host: self.host * by,
            static_energy: self.static_energy * by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = EnergyLedger { compute: 1.0, reads: 2.0, ..Default::default() };
        let b = EnergyLedger { writes: 3.0, offchip: 4.0, host: 0.5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.total(), 10.5);
        assert_eq!(a.dynamic(), 10.5);
        a.charge_static(100.0, 0.01);
        assert_eq!(a.static_energy, 1.0);
        assert_eq!(a.total(), 11.5);
        assert_eq!(a.dynamic(), 10.5);
    }

    #[test]
    fn scaling() {
        let a = EnergyLedger {
            compute: 1.0,
            interconnect: 2.0,
            static_energy: 3.0,
            ..Default::default()
        };
        let s = a.scaled(0.5);
        assert_eq!(s.compute, 0.5);
        assert_eq!(s.interconnect, 1.0);
        assert_eq!(s.static_energy, 1.5);
        assert_eq!(s.total(), a.total() * 0.5);
    }
}
