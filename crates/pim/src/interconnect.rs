//! Inter-block interconnects: H-tree and Bus (§4.2, Fig. 3).
//!
//! The H-tree gives every tile a 4-ary switch tree over its 256 blocks
//! (64 + 16 + 4 + 1 = 85 switches, §4.2.2); transfers whose paths share
//! no switch proceed in parallel. The bus replaces all of that with one
//! central switch: lower static power, but "only one data path can be
//! enabled", so concurrent transfers serialize.
//!
//! Transfers between tiles route through the tiles' root switches and the
//! central controller, which is modeled as one shared chip-level resource.

use pim_isa::{BlockId, BLOCKS_PER_TILE};

use crate::params::{CLOCK_HZ, HOP_ENERGY_PER_WORD, LINK_BITS_PER_CYCLE};

/// Which interconnect a chip uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum InterconnectKind {
    HTree,
    Bus,
}

impl InterconnectKind {
    pub fn name(self) -> &'static str {
        match self {
            InterconnectKind::HTree => "H-tree",
            InterconnectKind::Bus => "Bus",
        }
    }
}

/// One inter-block data movement of `words` 32-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    pub src: BlockId,
    pub dst: BlockId,
    pub words: u32,
}

/// A switch (or the chip-level router) occupied by a routed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Switch `index` at `level` within `tile` (level 0 nearest the
    /// blocks).
    Switch { tile: u32, level: u8, index: u32 },
    /// The single chip-level router connecting tile roots.
    ChipRouter,
    /// The single bus switch of a tile.
    TileBus { tile: u32 },
}

/// Result of scheduling a batch of transfers that are ready at time 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// When the last transfer finishes (seconds).
    pub makespan: f64,
    /// Switch energy of all transfers (joules).
    pub energy: f64,
    /// Per-transfer completion times, in input order.
    pub finish_times: Vec<f64>,
}

/// Common behavior of the two interconnects.
pub trait Interconnect {
    /// The resources (switches) a transfer occupies, written into `out`
    /// (cleared first) in path order. The interpreter's hot path reuses
    /// one scratch vector across millions of transfers instead of
    /// allocating a fresh path per `Copy`/`Lut`.
    fn route_into(&self, src: BlockId, dst: BlockId, out: &mut Vec<Resource>);

    /// Path length of a transfer, without materializing the path.
    fn hops(&self, src: BlockId, dst: BlockId) -> usize;

    /// The resources (switches) a transfer occupies, in path order.
    fn route(&self, src: BlockId, dst: BlockId) -> Vec<Resource> {
        let mut out = Vec::new();
        self.route_into(src, dst, &mut out);
        out
    }

    /// Seconds a transfer occupies each switch on its path. Switches are
    /// cut-through: the payload streams through the whole path, so the
    /// occupancy is the serialization time of the payload on one link,
    /// independent of hop count (hop latency is a couple of cycles and is
    /// absorbed into the occupancy of the paper-scale payloads).
    fn duration(&self, transfer: &Transfer) -> f64 {
        let bits = transfer.words as u64 * 32;
        let cycles = bits.div_ceil(LINK_BITS_PER_CYCLE).max(1);
        cycles as f64 / CLOCK_HZ
    }

    /// Switch energy of one transfer: every word pays every hop.
    fn energy(&self, transfer: &Transfer) -> f64 {
        self.energy_with_hops(transfer, self.hops(transfer.src, transfer.dst))
    }

    /// [`Self::energy`] with the hop count already known (the hot path
    /// has just routed the transfer, so it passes the path length along
    /// rather than re-deriving the route).
    fn energy_with_hops(&self, transfer: &Transfer, hops: usize) -> f64 {
        let hops = hops.max(1) as f64;
        transfer.words as f64 * hops * HOP_ENERGY_PER_WORD
    }

    /// Greedy list-scheduling of a batch of transfers, honoring resource
    /// conflicts: a transfer starts when every switch on its path is free.
    fn schedule(&self, transfers: &[Transfer]) -> Schedule {
        use std::collections::HashMap;
        let mut free_at: HashMap<Resource, f64> = HashMap::new();
        let mut finish_times = Vec::with_capacity(transfers.len());
        let mut makespan = 0.0f64;
        let mut energy = 0.0;
        for t in transfers {
            let path = self.route(t.src, t.dst);
            let start =
                path.iter().map(|r| free_at.get(r).copied().unwrap_or(0.0)).fold(0.0f64, f64::max);
            let finish = start + self.duration(t);
            for r in path {
                free_at.insert(r, finish);
            }
            energy += self.energy(t);
            finish_times.push(finish);
            makespan = makespan.max(finish);
        }
        Schedule { makespan, energy, finish_times }
    }
}

/// The H-tree network: a `fanout`-ary switch tree per tile.
#[derive(Debug, Clone)]
pub struct HTreeNetwork {
    fanout: u32,
    levels: u8,
}

impl HTreeNetwork {
    /// The paper's default: fanout 4 over 256 blocks → 4 levels.
    pub fn new() -> Self {
        Self::with_fanout(4)
    }

    /// Custom fanout ("the number of children of a tree node does not have
    /// to be 4; it can be higher when customizing PIM systems for
    /// larger-scale models", §4.2.1).
    ///
    /// # Panics
    /// Panics unless the fanout divides 256 into whole levels (2, 4, 16).
    pub fn with_fanout(fanout: u32) -> Self {
        let mut remaining = BLOCKS_PER_TILE as u32;
        let mut levels = 0u8;
        while remaining > 1 {
            assert!(
                remaining.is_multiple_of(fanout),
                "fanout {fanout} does not evenly tile {BLOCKS_PER_TILE} blocks"
            );
            remaining /= fanout;
            levels += 1;
        }
        Self { fanout, levels }
    }

    /// Switch levels per tile.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Total switches in one tile: `Σ_{l=1..levels} 256 / fanout^l`.
    pub fn switches_per_tile(&self) -> u32 {
        let mut total = 0;
        let mut nodes = BLOCKS_PER_TILE as u32;
        for _ in 0..self.levels {
            nodes /= self.fanout;
            total += nodes;
        }
        total
    }

    /// The level-`l` switch above a block (level 0 = nearest switches).
    fn switch_above(&self, within_tile: u32, level: u8) -> u32 {
        within_tile / self.fanout.pow(level as u32 + 1)
    }

    /// Dense within-tile slot of the level-`level` switch `index`:
    /// switches are numbered level by level from the leaves, so the slots
    /// `0..switches_per_tile()` enumerate every switch of one tile
    /// exactly once. Lets a simulator keep per-switch state in a flat
    /// array instead of a hash map.
    pub fn switch_slot(&self, level: u8, index: u32) -> u32 {
        debug_assert!(level < self.levels);
        let mut base = 0;
        let mut nodes = BLOCKS_PER_TILE as u32;
        for _ in 0..level {
            nodes /= self.fanout;
            base += nodes;
        }
        debug_assert!(index < nodes / self.fanout);
        base + index
    }
}

impl Default for HTreeNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl HTreeNetwork {
    /// Level of the lowest common ancestor of two blocks in one tile.
    fn lca_level(&self, sw: u32, dw: u32) -> u8 {
        let mut lca_level = 0u8;
        while self.switch_above(sw, lca_level) != self.switch_above(dw, lca_level) {
            lca_level += 1;
        }
        lca_level
    }
}

impl Interconnect for HTreeNetwork {
    fn route_into(&self, src: BlockId, dst: BlockId, path: &mut Vec<Resource>) {
        path.clear();
        if src == dst {
            return;
        }
        let (st, dt) = (src.tile(), dst.tile());
        if st == dt {
            // Climb to the lowest common ancestor, then descend: the path
            // occupies each switch from leaf to LCA on both sides (the LCA
            // once).
            let (sw, dw) = (src.within_tile(), dst.within_tile());
            let lca_level = self.lca_level(sw, dw);
            for l in 0..=lca_level {
                path.push(Resource::Switch { tile: st, level: l, index: self.switch_above(sw, l) });
            }
            for l in (0..lca_level).rev() {
                path.push(Resource::Switch { tile: dt, level: l, index: self.switch_above(dw, l) });
            }
        } else {
            // Up the whole source tree, across the chip router, down the
            // whole destination tree.
            let sw = src.within_tile();
            for l in 0..self.levels {
                path.push(Resource::Switch { tile: st, level: l, index: self.switch_above(sw, l) });
            }
            path.push(Resource::ChipRouter);
            let dw = dst.within_tile();
            for l in (0..self.levels).rev() {
                path.push(Resource::Switch { tile: dt, level: l, index: self.switch_above(dw, l) });
            }
        }
    }

    fn hops(&self, src: BlockId, dst: BlockId) -> usize {
        if src == dst {
            return 0;
        }
        let (st, dt) = (src.tile(), dst.tile());
        if st == dt {
            // `lca_level + 1` switches up, `lca_level` down.
            2 * self.lca_level(src.within_tile(), dst.within_tile()) as usize + 1
        } else {
            // Both full trees plus the chip router.
            2 * self.levels as usize + 1
        }
    }
}

/// The bus network: one switch per tile, chip router between tiles.
#[derive(Debug, Clone, Default)]
pub struct BusNetwork;

impl BusNetwork {
    pub fn new() -> Self {
        Self
    }
}

impl Interconnect for BusNetwork {
    fn route_into(&self, src: BlockId, dst: BlockId, path: &mut Vec<Resource>) {
        path.clear();
        if src == dst {
            return;
        }
        let (st, dt) = (src.tile(), dst.tile());
        if st == dt {
            path.push(Resource::TileBus { tile: st });
        } else {
            path.extend([
                Resource::TileBus { tile: st },
                Resource::ChipRouter,
                Resource::TileBus { tile: dt },
            ]);
        }
    }

    fn hops(&self, src: BlockId, dst: BlockId) -> usize {
        if src == dst {
            0
        } else if src.tile() == dst.tile() {
            1
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src: u32, dst: u32, words: u32) -> Transfer {
        Transfer { src: BlockId(src), dst: BlockId(dst), words }
    }

    #[test]
    fn htree_has_85_switches_per_tile() {
        // §4.2.2: "in a 256-block memory tile, 64 + 16 + 4 + 1 = 85 H-tree
        // node switches have to be used."
        let h = HTreeNetwork::new();
        assert_eq!(h.switches_per_tile(), 85);
        assert_eq!(h.levels(), 4);
    }

    #[test]
    fn switch_slots_enumerate_every_switch_once() {
        for fanout in [2u32, 4, 16] {
            let h = HTreeNetwork::with_fanout(fanout);
            let mut seen = vec![false; h.switches_per_tile() as usize];
            let mut nodes = BLOCKS_PER_TILE as u32;
            for level in 0..h.levels() {
                nodes /= fanout;
                for index in 0..nodes {
                    let slot = h.switch_slot(level, index) as usize;
                    assert!(!seen[slot], "fanout {fanout}: slot {slot} assigned twice");
                    seen[slot] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "fanout {fanout}: unassigned slots");
        }
    }

    #[test]
    fn htree_alternative_fanouts() {
        assert_eq!(HTreeNetwork::with_fanout(2).levels(), 8);
        assert_eq!(HTreeNetwork::with_fanout(16).levels(), 2);
        assert_eq!(HTreeNetwork::with_fanout(16).switches_per_tile(), 17);
    }

    #[test]
    #[should_panic(expected = "does not evenly tile")]
    fn htree_rejects_bad_fanout() {
        let _ = HTreeNetwork::with_fanout(3);
    }

    #[test]
    fn route_between_siblings_uses_one_switch() {
        // Blocks 0 and 1 share their S0 switch: the whole path is that one
        // switch (Fig. 3: "the data will only pass through one S0 H-tree
        // switch").
        let h = HTreeNetwork::new();
        let path = h.route(BlockId(0), BlockId(1));
        assert_eq!(path, vec![Resource::Switch { tile: 0, level: 0, index: 0 }]);
    }

    #[test]
    fn route_across_quads_climbs_and_descends() {
        // Fig. 3's example: Block 0 → Block 5 passes S0(src quad), S1,
        // S0(dst quad) — three switches for fanout 4.
        let h = HTreeNetwork::new();
        let path = h.route(BlockId(0), BlockId(5));
        assert_eq!(
            path,
            vec![
                Resource::Switch { tile: 0, level: 0, index: 0 },
                Resource::Switch { tile: 0, level: 1, index: 0 },
                Resource::Switch { tile: 0, level: 0, index: 1 },
            ]
        );
    }

    #[test]
    fn route_is_symmetric_in_length() {
        let h = HTreeNetwork::new();
        for (a, b) in [(0u32, 255u32), (3, 200), (17, 18), (64, 128)] {
            assert_eq!(
                h.route(BlockId(a), BlockId(b)).len(),
                h.route(BlockId(b), BlockId(a)).len()
            );
        }
    }

    #[test]
    fn self_route_is_empty() {
        assert!(HTreeNetwork::new().route(BlockId(7), BlockId(7)).is_empty());
        assert!(BusNetwork::new().route(BlockId(7), BlockId(7)).is_empty());
    }

    #[test]
    fn cross_tile_route_uses_chip_router() {
        let h = HTreeNetwork::new();
        let path = h.route(BlockId(0), BlockId(256));
        assert!(path.contains(&Resource::ChipRouter));
        // 4 levels up + router + 4 levels down.
        assert_eq!(path.len(), 9);
        let b = BusNetwork::new();
        assert_eq!(b.route(BlockId(0), BlockId(256)).len(), 3);
    }

    #[test]
    fn disjoint_htree_transfers_run_in_parallel_but_bus_serializes() {
        // Fig. 3's bus example: Block 0 → 2 and Block 5 → 7 overlap on the
        // H-tree (disjoint S0 switches) but serialize on the single bus
        // switch.
        let h = HTreeNetwork::new();
        let b = BusNetwork::new();
        let batch = [t(0, 2, 32), t(5, 7, 32)];
        let hs = h.schedule(&batch);
        let bs = b.schedule(&batch);
        let single_h = h.schedule(&batch[..1]);
        let single_b = b.schedule(&batch[..1]);
        assert!(
            (hs.makespan - single_h.makespan).abs() < 1e-15,
            "H-tree must overlap disjoint transfers"
        );
        assert!((bs.makespan - 2.0 * single_b.makespan).abs() < 1e-15, "bus must serialize");
    }

    #[test]
    fn conflicting_htree_transfers_serialize() {
        // Both transfers need S0 switch 0.
        let h = HTreeNetwork::new();
        let batch = [t(0, 1, 32), t(2, 3, 32)];
        let s = h.schedule(&batch);
        let single = h.schedule(&batch[..1]);
        assert!((s.makespan - 2.0 * single.makespan).abs() < 1e-15);
    }

    #[test]
    fn duration_scales_with_words_not_hops() {
        // Cut-through switching: occupancy depends on payload size, not
        // path length (the path length costs *energy*, below).
        let h = HTreeNetwork::new();
        let near = h.duration(&t(0, 1, 32));
        let far = h.duration(&t(0, 255, 32));
        assert_eq!(near, far);
        let big = h.duration(&t(0, 1, 320));
        let ratio = big / near;
        assert!((9.5..10.5).contains(&ratio), "10× data ≈ 10× time, got {ratio}");
    }

    #[test]
    fn htree_energy_exceeds_bus_energy_per_transfer() {
        // More switch hops → more energy per transfer on the H-tree for
        // long intra-tile routes (the flip side of its parallelism).
        let h = HTreeNetwork::new();
        let b = BusNetwork::new();
        let far = t(0, 255, 32);
        assert!(h.energy(&far) > b.energy(&far));
    }

    #[test]
    fn schedule_reports_per_transfer_finish_times() {
        let b = BusNetwork::new();
        let batch = [t(0, 1, 32), t(2, 3, 32), t(4, 5, 32)];
        let s = b.schedule(&batch);
        assert_eq!(s.finish_times.len(), 3);
        assert!(s.finish_times.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.finish_times[2], s.makespan);
    }
}
