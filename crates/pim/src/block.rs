//! The memory block: a 1K×1K memristor crossbar that both stores and
//! computes.
//!
//! Functionally, a block is 1,024 rows of 32 words plus a row buffer;
//! row-parallel arithmetic applies one bit-serial operation to every row
//! of a range simultaneously (§4.1: "computations are performed inside
//! memristor cells in a row-parallel way"). Costs (time and energy) come
//! from [`crate::params`].
//!
//! Note on precision: the functional model stores `f64` so the PIM
//! execution can be compared bit-for-bit against the native `f64` dG
//! solver; the *cost* model charges 32-bit operation prices throughout,
//! matching the paper's FP32 evaluation. Mapping correctness and numeric
//! precision are orthogonal concerns.

use pim_isa::{AluOp, BLOCK_ROWS, WORDS_PER_ROW};

use crate::params;

/// Time and energy charged by one block operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCost {
    pub seconds: f64,
    pub joules: f64,
}

/// One memory block.
#[derive(Debug, Clone)]
pub struct MemBlock {
    words: Vec<f64>,
    row_buffer: [f64; WORDS_PER_ROW],
}

impl Default for MemBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl MemBlock {
    /// An all-zero block.
    pub fn new() -> Self {
        Self { words: vec![0.0; BLOCK_ROWS * WORDS_PER_ROW], row_buffer: [0.0; WORDS_PER_ROW] }
    }

    /// Word accessor (row 0..1024, col 0..32).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < BLOCK_ROWS && col < WORDS_PER_ROW);
        self.words[row * WORDS_PER_ROW + col]
    }

    /// Word setter — host-side preload (DMA), not charged here.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < BLOCK_ROWS && col < WORDS_PER_ROW);
        self.words[row * WORDS_PER_ROW + col] = value;
    }

    /// Current row-buffer contents.
    pub fn row_buffer(&self) -> &[f64; WORDS_PER_ROW] {
        &self.row_buffer
    }

    /// Overwrites the row buffer (used by inter-block copies).
    pub fn load_row_buffer(&mut self, values: &[f64]) {
        assert!(values.len() <= WORDS_PER_ROW);
        self.row_buffer[..values.len()].copy_from_slice(values);
    }

    /// `Read`: cells → row buffer. One search per read.
    pub fn read_to_buffer(&mut self, row: usize, offset: usize, words: usize) -> OpCost {
        assert!(offset + words <= WORDS_PER_ROW, "read crosses the row edge");
        for w in 0..words {
            self.row_buffer[w] = self.get(row, offset + w);
        }
        OpCost { seconds: params::T_SEARCH, joules: params::E_SEARCH }
    }

    /// `Write`: row buffer → cells. Each bit pays the average of set and
    /// reset energy; the write takes one set plus one reset phase.
    pub fn write_from_buffer(&mut self, row: usize, offset: usize, words: usize) -> OpCost {
        assert!(offset + words <= WORDS_PER_ROW, "write crosses the row edge");
        for w in 0..words {
            self.set(row, offset + w, self.row_buffer[w]);
        }
        let bits = (words * 32) as f64;
        OpCost {
            seconds: 2.0 * params::T_SEARCH,
            joules: bits * 0.5 * (params::E_SET + params::E_RESET),
        }
    }

    /// `Broadcast`: row buffer replicated into rows
    /// `dst_first..=dst_last` at `offset` — the constants distribution of
    /// the paper's Fig. 5 ("constants need to be copied to the scratchpad
    /// and broadcast to the first 512 rows before the computation
    /// begins"). Every destination row pays a write.
    pub fn broadcast(
        &mut self,
        dst_first: usize,
        dst_last: usize,
        offset: usize,
        words: usize,
    ) -> OpCost {
        assert!(dst_first <= dst_last && dst_last < BLOCK_ROWS, "bad broadcast range");
        assert!(offset + words <= WORDS_PER_ROW, "broadcast crosses the row edge");
        for row in dst_first..=dst_last {
            for w in 0..words {
                self.set(row, offset + w, self.row_buffer[w]);
            }
        }
        let rows = (dst_last - dst_first + 1) as f64;
        let bits = (words * 32) as f64;
        OpCost {
            seconds: rows * 2.0 * params::T_SEARCH,
            joules: rows * bits * 0.5 * (params::E_SET + params::E_RESET),
        }
    }

    /// `Arith`: row-parallel `dst ← a op b` over `first_row..=last_row`.
    /// Every selected row computes simultaneously, so the *time* is one
    /// bit-serial pass regardless of the row count — that is the PIM's
    /// parallelism — while the *energy* scales with the rows touched.
    pub fn arith(
        &mut self,
        op: AluOp,
        first_row: usize,
        last_row: usize,
        dst: usize,
        a: usize,
        b: usize,
    ) -> OpCost {
        assert!(first_row <= last_row && last_row < BLOCK_ROWS, "bad row range");
        assert!(dst < WORDS_PER_ROW && a < WORDS_PER_ROW && b < WORDS_PER_ROW);
        for row in first_row..=last_row {
            let x = self.get(row, a);
            let y = self.get(row, b);
            let r = match op {
                AluOp::Add => x + y,
                AluOp::Sub => x - y,
                AluOp::Mul => x * y,
                AluOp::Mac => x * y + self.get(row, dst),
                AluOp::Neg => -x,
                AluOp::Mov => x,
            };
            self.set(row, dst, r);
        }
        let rows = (last_row - first_row + 1) as u64;
        OpCost {
            seconds: params::nor_seconds(params::alu_cycles(op)),
            joules: params::alu_energy(op, rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip_via_buffer() {
        let mut b = MemBlock::new();
        b.set(3, 5, 1.25);
        b.set(3, 6, -2.5);
        let c1 = b.read_to_buffer(3, 5, 2);
        assert_eq!(b.row_buffer()[0], 1.25);
        assert_eq!(b.row_buffer()[1], -2.5);
        let c2 = b.write_from_buffer(10, 0, 2);
        assert_eq!(b.get(10, 0), 1.25);
        assert_eq!(b.get(10, 1), -2.5);
        assert!(c1.seconds > 0.0 && c1.joules > 0.0);
        assert!(c2.seconds > c1.seconds, "writes are slower than reads");
    }

    #[test]
    fn broadcast_replicates_and_charges_per_row() {
        let mut b = MemBlock::new();
        b.load_row_buffer(&[7.0, 8.0]);
        let c = b.broadcast(0, 511, 30, 2);
        for row in 0..512 {
            assert_eq!(b.get(row, 30), 7.0);
            assert_eq!(b.get(row, 31), 8.0);
        }
        assert_eq!(b.get(512, 30), 0.0, "rows beyond the range untouched");
        let single = b.broadcast(0, 0, 0, 2);
        assert!((c.joules / single.joules - 512.0).abs() < 1e-9);
    }

    #[test]
    fn arith_is_row_parallel_in_time_not_energy() {
        let mut b = MemBlock::new();
        for row in 0..512 {
            b.set(row, 0, row as f64);
            b.set(row, 1, 2.0);
        }
        let many = b.arith(AluOp::Mul, 0, 511, 2, 0, 1);
        for row in 0..512 {
            assert_eq!(b.get(row, 2), row as f64 * 2.0);
        }
        let mut b2 = MemBlock::new();
        let one = b2.arith(AluOp::Mul, 0, 0, 2, 0, 1);
        assert_eq!(many.seconds, one.seconds, "time independent of rows");
        assert!((many.joules / one.joules - 512.0).abs() < 1e-9, "energy scales with rows");
    }

    #[test]
    fn all_alu_ops_compute_correctly() {
        let mut b = MemBlock::new();
        b.set(0, 0, 6.0);
        b.set(0, 1, -2.0);
        b.set(0, 2, 10.0); // pre-existing dst for MAC
        b.arith(AluOp::Add, 0, 0, 3, 0, 1);
        assert_eq!(b.get(0, 3), 4.0);
        b.arith(AluOp::Sub, 0, 0, 3, 0, 1);
        assert_eq!(b.get(0, 3), 8.0);
        b.arith(AluOp::Mul, 0, 0, 3, 0, 1);
        assert_eq!(b.get(0, 3), -12.0);
        b.arith(AluOp::Mac, 0, 0, 2, 0, 1);
        assert_eq!(b.get(0, 2), -2.0); // 10 + 6·(−2)
        b.arith(AluOp::Neg, 0, 0, 3, 0, 1);
        assert_eq!(b.get(0, 3), -6.0);
        b.arith(AluOp::Mov, 0, 0, 3, 1, 0);
        assert_eq!(b.get(0, 3), -2.0);
    }

    #[test]
    fn mul_costs_more_time_than_add() {
        let mut b = MemBlock::new();
        let add = b.arith(AluOp::Add, 0, 0, 2, 0, 1);
        let mul = b.arith(AluOp::Mul, 0, 0, 2, 0, 1);
        let mac = b.arith(AluOp::Mac, 0, 0, 2, 0, 1);
        assert!(mul.seconds > add.seconds);
        assert!(mac.seconds > mul.seconds);
    }

    #[test]
    #[should_panic(expected = "crosses the row edge")]
    fn read_past_row_edge_panics() {
        let mut b = MemBlock::new();
        let _ = b.read_to_buffer(0, 31, 2);
    }

    #[test]
    #[should_panic(expected = "bad row range")]
    fn arith_bad_range_panics() {
        let mut b = MemBlock::new();
        let _ = b.arith(AluOp::Add, 5, 4, 0, 1, 2);
    }
}
