//! The memory block: a 1K×1K memristor crossbar that both stores and
//! computes.
//!
//! Functionally, a block is 1,024 rows of 32 words plus a row buffer;
//! row-parallel arithmetic applies one bit-serial operation to every row
//! of a range simultaneously (§4.1: "computations are performed inside
//! memristor cells in a row-parallel way"). Costs (time and energy) come
//! from [`crate::params`].
//!
//! # Storage layout: column-major planes
//!
//! The crossbar is stored as 32 column planes of 1,024 rows each
//! (`planes[col × 1024 + row]`), not as 1,024 row-major rows. A
//! row-parallel `Arith` names a fixed `(dst, a, b)` column triple and a
//! row range, so under this layout one instruction touches exactly three
//! contiguous `&[f64]` runs — the same shape as the hardware's
//! word-parallel bitlines — and the per-op kernels below compile to
//! straight vector loops instead of a stride-32 gather. `Broadcast`
//! becomes a contiguous `fill` per word. Host-side `get`/`set` and the
//! row-buffer `Read`/`Write` path pay the transpose instead, which is
//! fine: they move ≤32 words at a time while an `Arith` moves up to
//! 3,072.
//!
//! The pre-layout scalar loop is retained as [`MemBlock::arith_scalar`]
//! and [`MemBlock::broadcast_scalar`] — the bit-exactness oracle the
//! kernel proptests compare against, and the whole engine when the
//! `scalar-oracle` feature is enabled (CI runs the full suite both
//! ways).
//!
//! Note on precision: the functional model stores `f64` so the PIM
//! execution can be compared bit-for-bit against the native `f64` dG
//! solver; the *cost* model charges 32-bit operation prices throughout,
//! matching the paper's FP32 evaluation. Mapping correctness and numeric
//! precision are orthogonal concerns, and the column-major layout does
//! not couple them: it changes where a word lives, never what is stored
//! in it or what an operation on it is priced at.

use pim_isa::{AluOp, BLOCK_ROWS, WORDS_PER_ROW};

use crate::params;

/// Time and energy charged by one block operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCost {
    pub seconds: f64,
    pub joules: f64,
}

/// One memory block.
#[derive(Debug, Clone)]
pub struct MemBlock {
    /// Column-major storage: `planes[col * BLOCK_ROWS + row]`.
    planes: Box<[f64]>,
    row_buffer: [f64; WORDS_PER_ROW],
}

impl Default for MemBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Rows per vector-kernel chunk: wide enough that LLVM unrolls the body
/// into full-width SIMD lanes, small enough that the remainder loop
/// stays cheap for the few-row streams the per-element compilers emit.
const CHUNK: usize = 8;

/// `d[i] = f(x[i], y[i])` over three equal-length column runs, chunked
/// so the inner body is a fixed-trip-count loop the compiler unrolls
/// and vectorizes. `x`/`y` may alias each other (shared borrows); `d`
/// is necessarily disjoint from both.
#[inline(always)]
fn map2(d: &mut [f64], x: &[f64], y: &[f64], f: impl Fn(f64, f64) -> f64) {
    let n = d.len();
    let chunks = n / CHUNK * CHUNK;
    for ((dc, xc), yc) in
        d[..chunks].chunks_exact_mut(CHUNK).zip(x.chunks_exact(CHUNK)).zip(y.chunks_exact(CHUNK))
    {
        for i in 0..CHUNK {
            dc[i] = f(xc[i], yc[i]);
        }
    }
    for i in chunks..n {
        d[i] = f(x[i], y[i]);
    }
}

/// `d[i] = f(x[i], y[i], d[i])` — the MAC shape, destination read before
/// written within each element.
#[inline(always)]
fn map2_acc(d: &mut [f64], x: &[f64], y: &[f64], f: impl Fn(f64, f64, f64) -> f64) {
    let n = d.len();
    let chunks = n / CHUNK * CHUNK;
    for ((dc, xc), yc) in
        d[..chunks].chunks_exact_mut(CHUNK).zip(x.chunks_exact(CHUNK)).zip(y.chunks_exact(CHUNK))
    {
        for i in 0..CHUNK {
            dc[i] = f(xc[i], yc[i], dc[i]);
        }
    }
    for i in chunks..n {
        d[i] = f(x[i], y[i], d[i]);
    }
}

/// `d[i] = f(x[i])` — the unary (Neg/Mov) shape.
#[inline(always)]
fn map1(d: &mut [f64], x: &[f64], f: impl Fn(f64) -> f64) {
    let n = d.len();
    let chunks = n / CHUNK * CHUNK;
    for (dc, xc) in d[..chunks].chunks_exact_mut(CHUNK).zip(x.chunks_exact(CHUNK)) {
        for i in 0..CHUNK {
            dc[i] = f(xc[i]);
        }
    }
    for i in chunks..n {
        d[i] = f(x[i]);
    }
}

/// Hints the CPU to pull the line holding `p` toward the caches. The
/// plane working set at cluster scale (thousands of 256 KiB blocks) is
/// far larger than any cache level, so without hints nearly every cell
/// access is a serialized DRAM miss; the interpreter knows its targets
/// well ahead of use and issues these from a lookahead cursor.
#[inline(always)]
fn prefetch_read(p: *const f64) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `p` is derived from an in-bounds reference; prefetch has
    // no architectural effect regardless.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

impl MemBlock {
    /// An all-zero block.
    pub fn new() -> Self {
        Self {
            planes: vec![0.0; BLOCK_ROWS * WORDS_PER_ROW].into_boxed_slice(),
            row_buffer: [0.0; WORDS_PER_ROW],
        }
    }

    /// Word accessor (row 0..1024, col 0..32).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < BLOCK_ROWS && col < WORDS_PER_ROW);
        self.planes[col * BLOCK_ROWS + row]
    }

    /// Word setter — host-side preload (DMA), not charged here.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < BLOCK_ROWS && col < WORDS_PER_ROW);
        self.planes[col * BLOCK_ROWS + row] = value;
    }

    /// Best-effort software prefetch of the cells a `Read`/`Write` at
    /// `(row, offset, words)` will touch. Purely advisory — nothing
    /// observable changes, out-of-range coordinates are ignored, and on
    /// non-x86_64 targets this compiles to nothing. `write` records the
    /// caller's intent; both intents currently map to a plain `T0` hint
    /// because `prefetchw` measured slower than `prefetcht0` on the
    /// hardware this was tuned on.
    #[inline]
    pub fn prefetch_words(&self, row: usize, offset: usize, words: usize, write: bool) {
        for w in 0..words {
            self.prefetch_cell((offset + w) * BLOCK_ROWS + row, write);
        }
    }

    /// Best-effort prefetch of one column plane's `first_row..=last_row`
    /// slice (the footprint of an `Arith` operand or a `Broadcast`
    /// destination column): one touch per cache line of `f64`s.
    #[inline]
    pub fn prefetch_col(&self, col: usize, first_row: usize, last_row: usize, write: bool) {
        if col >= WORDS_PER_ROW {
            return;
        }
        let base = col * BLOCK_ROWS;
        let mut row = first_row;
        while row <= last_row && row < BLOCK_ROWS {
            self.prefetch_cell(base + row, write);
            // 8 × 8-byte cells per 64-byte line.
            row += 8;
        }
    }

    #[inline(always)]
    fn prefetch_cell(&self, idx: usize, _write: bool) {
        if let Some(cell) = self.planes.get(idx) {
            prefetch_read(cell as *const f64);
        }
    }

    /// Hints the row buffer itself (4 lines of 8 words): every
    /// `Read`/`Write`/`Copy`/`Broadcast` goes through it, and with GBs
    /// of planes streaming past, the small per-block structs get
    /// evicted right along with the cell data.
    #[inline]
    pub fn prefetch_row_buffer(&self) {
        for chunk in self.row_buffer.chunks(8) {
            prefetch_read(&chunk[0] as *const f64);
        }
    }

    /// Current row-buffer contents.
    pub fn row_buffer(&self) -> &[f64; WORDS_PER_ROW] {
        &self.row_buffer
    }

    /// Overwrites the row buffer (used by inter-block copies).
    pub fn load_row_buffer(&mut self, values: &[f64]) {
        assert!(values.len() <= WORDS_PER_ROW);
        self.row_buffer[..values.len()].copy_from_slice(values);
    }

    /// `Read`: cells → row buffer. One search per read.
    pub fn read_to_buffer(&mut self, row: usize, offset: usize, words: usize) -> OpCost {
        assert!(offset + words <= WORDS_PER_ROW, "read crosses the row edge");
        for w in 0..words {
            self.row_buffer[w] = self.planes[(offset + w) * BLOCK_ROWS + row];
        }
        OpCost { seconds: params::T_SEARCH, joules: params::E_SEARCH }
    }

    /// `Write`: row buffer → cells. Each bit pays the average of set and
    /// reset energy; the write takes one set plus one reset phase.
    pub fn write_from_buffer(&mut self, row: usize, offset: usize, words: usize) -> OpCost {
        assert!(offset + words <= WORDS_PER_ROW, "write crosses the row edge");
        for w in 0..words {
            self.planes[(offset + w) * BLOCK_ROWS + row] = self.row_buffer[w];
        }
        let bits = (words * 32) as f64;
        OpCost {
            seconds: 2.0 * params::T_SEARCH,
            joules: bits * 0.5 * (params::E_SET + params::E_RESET),
        }
    }

    /// `Broadcast`: row buffer replicated into rows
    /// `dst_first..=dst_last` at `offset` — the constants distribution of
    /// the paper's Fig. 5 ("constants need to be copied to the scratchpad
    /// and broadcast to the first 512 rows before the computation
    /// begins"). Every destination row pays a write.
    ///
    /// Column-major, each destination word is one contiguous `fill` over
    /// the row range.
    pub fn broadcast(
        &mut self,
        dst_first: usize,
        dst_last: usize,
        offset: usize,
        words: usize,
    ) -> OpCost {
        assert!(dst_first <= dst_last && dst_last < BLOCK_ROWS, "bad broadcast range");
        assert!(offset + words <= WORDS_PER_ROW, "broadcast crosses the row edge");
        #[cfg(feature = "scalar-oracle")]
        self.broadcast_cells_scalar(dst_first, dst_last, offset, words);
        #[cfg(not(feature = "scalar-oracle"))]
        for w in 0..words {
            let value = self.row_buffer[w];
            self.planes
                [(offset + w) * BLOCK_ROWS + dst_first..(offset + w) * BLOCK_ROWS + dst_last + 1]
                .fill(value);
        }
        let rows = (dst_last - dst_first + 1) as f64;
        let bits = (words * 32) as f64;
        OpCost {
            seconds: rows * 2.0 * params::T_SEARCH,
            joules: rows * bits * 0.5 * (params::E_SET + params::E_RESET),
        }
    }

    /// `Arith`: row-parallel `dst ← a op b` over `first_row..=last_row`.
    /// Every selected row computes simultaneously, so the *time* is one
    /// bit-serial pass regardless of the row count — that is the PIM's
    /// parallelism — while the *energy* scales with the rows touched.
    pub fn arith(
        &mut self,
        op: AluOp,
        first_row: usize,
        last_row: usize,
        dst: usize,
        a: usize,
        b: usize,
    ) -> OpCost {
        assert!(first_row <= last_row && last_row < BLOCK_ROWS, "bad row range");
        assert!(dst < WORDS_PER_ROW && a < WORDS_PER_ROW && b < WORDS_PER_ROW);
        #[cfg(feature = "scalar-oracle")]
        self.arith_cells_scalar(op, first_row, last_row, dst, a, b);
        #[cfg(not(feature = "scalar-oracle"))]
        self.arith_cells_vector(op, first_row, last_row, dst, a, b);
        let rows = (last_row - first_row + 1) as u64;
        OpCost {
            seconds: params::nor_seconds(params::alu_cycles(op)),
            joules: params::alu_energy(op, rows),
        }
    }

    /// The word-parallel data pass: three contiguous column runs, one
    /// vector kernel per [`AluOp`]. Falls back to the scalar loop when
    /// the destination column aliases an operand column (the compilers
    /// never emit that shape, but a hand-written or fuzzed stream may).
    fn arith_cells_vector(
        &mut self,
        op: AluOp,
        first_row: usize,
        last_row: usize,
        dst: usize,
        a: usize,
        b: usize,
    ) {
        let uses_b = matches!(op, AluOp::Add | AluOp::Sub | AluOp::Mul | AluOp::Mac);
        if dst == a || (uses_b && dst == b) {
            return self.arith_cells_scalar(op, first_row, last_row, dst, a, b);
        }
        let n = last_row - first_row + 1;
        // Split the plane storage around the destination column so the
        // destination run borrows mutably while the operand runs borrow
        // shared — fully safe, and the disjointness lets the kernels
        // vectorize without aliasing checks.
        let (before, rest) = self.planes.split_at_mut(dst * BLOCK_ROWS);
        let (dplane, after) = rest.split_at_mut(BLOCK_ROWS);
        let col = |c: usize| -> &[f64] {
            if c < dst {
                &before[c * BLOCK_ROWS + first_row..][..n]
            } else {
                &after[(c - dst - 1) * BLOCK_ROWS + first_row..][..n]
            }
        };
        let d = &mut dplane[first_row..first_row + n];
        match op {
            AluOp::Add => map2(d, col(a), col(b), |x, y| x + y),
            AluOp::Sub => map2(d, col(a), col(b), |x, y| x - y),
            AluOp::Mul => map2(d, col(a), col(b), |x, y| x * y),
            // Two roundings (mul then add), exactly like the scalar
            // oracle — no `mul_add`, which would fuse them.
            AluOp::Mac => map2_acc(d, col(a), col(b), |x, y, acc| x * y + acc),
            AluOp::Neg => map1(d, col(a), |x| -x),
            AluOp::Mov => map1(d, col(a), |x| x),
        }
    }

    /// The pre-vectorization row-at-a-time data pass, kept as the
    /// bit-exactness oracle (and as the aliased-destination fallback).
    fn arith_cells_scalar(
        &mut self,
        op: AluOp,
        first_row: usize,
        last_row: usize,
        dst: usize,
        a: usize,
        b: usize,
    ) {
        for row in first_row..=last_row {
            let x = self.get(row, a);
            let y = self.get(row, b);
            let r = match op {
                AluOp::Add => x + y,
                AluOp::Sub => x - y,
                AluOp::Mul => x * y,
                AluOp::Mac => x * y + self.get(row, dst),
                AluOp::Neg => -x,
                AluOp::Mov => x,
            };
            self.set(row, dst, r);
        }
    }

    /// Scalar broadcast data pass (oracle / `scalar-oracle` engine).
    #[cfg(any(test, feature = "scalar-oracle"))]
    fn broadcast_cells_scalar(
        &mut self,
        dst_first: usize,
        dst_last: usize,
        offset: usize,
        words: usize,
    ) {
        for row in dst_first..=dst_last {
            for w in 0..words {
                self.set(row, offset + w, self.row_buffer[w]);
            }
        }
    }

    /// `Arith` through the retained scalar loop, with the same cost
    /// accounting as [`Self::arith`] — the oracle the vectorized engine
    /// is proptested bit-identical against.
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn arith_scalar(
        &mut self,
        op: AluOp,
        first_row: usize,
        last_row: usize,
        dst: usize,
        a: usize,
        b: usize,
    ) -> OpCost {
        assert!(first_row <= last_row && last_row < BLOCK_ROWS, "bad row range");
        assert!(dst < WORDS_PER_ROW && a < WORDS_PER_ROW && b < WORDS_PER_ROW);
        self.arith_cells_scalar(op, first_row, last_row, dst, a, b);
        let rows = (last_row - first_row + 1) as u64;
        OpCost {
            seconds: params::nor_seconds(params::alu_cycles(op)),
            joules: params::alu_energy(op, rows),
        }
    }

    /// `Broadcast` through the retained scalar loop (oracle twin of
    /// [`Self::broadcast`]).
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn broadcast_scalar(
        &mut self,
        dst_first: usize,
        dst_last: usize,
        offset: usize,
        words: usize,
    ) -> OpCost {
        assert!(dst_first <= dst_last && dst_last < BLOCK_ROWS, "bad broadcast range");
        assert!(offset + words <= WORDS_PER_ROW, "broadcast crosses the row edge");
        self.broadcast_cells_scalar(dst_first, dst_last, offset, words);
        let rows = (dst_last - dst_first + 1) as f64;
        let bits = (words * 32) as f64;
        OpCost {
            seconds: rows * 2.0 * params::T_SEARCH,
            joules: rows * bits * 0.5 * (params::E_SET + params::E_RESET),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip_via_buffer() {
        let mut b = MemBlock::new();
        b.set(3, 5, 1.25);
        b.set(3, 6, -2.5);
        let c1 = b.read_to_buffer(3, 5, 2);
        assert_eq!(b.row_buffer()[0], 1.25);
        assert_eq!(b.row_buffer()[1], -2.5);
        let c2 = b.write_from_buffer(10, 0, 2);
        assert_eq!(b.get(10, 0), 1.25);
        assert_eq!(b.get(10, 1), -2.5);
        assert!(c1.seconds > 0.0 && c1.joules > 0.0);
        assert!(c2.seconds > c1.seconds, "writes are slower than reads");
    }

    #[test]
    fn broadcast_replicates_and_charges_per_row() {
        let mut b = MemBlock::new();
        b.load_row_buffer(&[7.0, 8.0]);
        let c = b.broadcast(0, 511, 30, 2);
        for row in 0..512 {
            assert_eq!(b.get(row, 30), 7.0);
            assert_eq!(b.get(row, 31), 8.0);
        }
        assert_eq!(b.get(512, 30), 0.0, "rows beyond the range untouched");
        let single = b.broadcast(0, 0, 0, 2);
        assert!((c.joules / single.joules - 512.0).abs() < 1e-9);
    }

    #[test]
    fn arith_is_row_parallel_in_time_not_energy() {
        let mut b = MemBlock::new();
        for row in 0..512 {
            b.set(row, 0, row as f64);
            b.set(row, 1, 2.0);
        }
        let many = b.arith(AluOp::Mul, 0, 511, 2, 0, 1);
        for row in 0..512 {
            assert_eq!(b.get(row, 2), row as f64 * 2.0);
        }
        let mut b2 = MemBlock::new();
        let one = b2.arith(AluOp::Mul, 0, 0, 2, 0, 1);
        assert_eq!(many.seconds, one.seconds, "time independent of rows");
        assert!((many.joules / one.joules - 512.0).abs() < 1e-9, "energy scales with rows");
    }

    #[test]
    fn all_alu_ops_compute_correctly() {
        let mut b = MemBlock::new();
        b.set(0, 0, 6.0);
        b.set(0, 1, -2.0);
        b.set(0, 2, 10.0); // pre-existing dst for MAC
        b.arith(AluOp::Add, 0, 0, 3, 0, 1);
        assert_eq!(b.get(0, 3), 4.0);
        b.arith(AluOp::Sub, 0, 0, 3, 0, 1);
        assert_eq!(b.get(0, 3), 8.0);
        b.arith(AluOp::Mul, 0, 0, 3, 0, 1);
        assert_eq!(b.get(0, 3), -12.0);
        b.arith(AluOp::Mac, 0, 0, 2, 0, 1);
        assert_eq!(b.get(0, 2), -2.0); // 10 + 6·(−2)
        b.arith(AluOp::Neg, 0, 0, 3, 0, 1);
        assert_eq!(b.get(0, 3), -6.0);
        b.arith(AluOp::Mov, 0, 0, 3, 1, 0);
        assert_eq!(b.get(0, 3), -2.0);
    }

    #[test]
    fn aliased_destination_matches_the_scalar_semantics() {
        // dst == a, dst == b and dst == a == b all take the scalar
        // fallback; the results must match a hand-computed row loop.
        let mut b = MemBlock::new();
        for row in 0..8 {
            b.set(row, 0, row as f64 + 1.0);
            b.set(row, 1, 3.0);
        }
        b.arith(AluOp::Mul, 0, 7, 0, 0, 1); // dst == a
        for row in 0..8 {
            assert_eq!(b.get(row, 0), (row as f64 + 1.0) * 3.0);
        }
        b.arith(AluOp::Add, 0, 7, 1, 0, 1); // dst == b
        for row in 0..8 {
            assert_eq!(b.get(row, 1), (row as f64 + 1.0) * 3.0 + 3.0);
        }
        b.arith(AluOp::Mac, 0, 7, 1, 1, 1); // dst == a == b
        for row in 0..8 {
            let v = (row as f64 + 1.0) * 3.0 + 3.0;
            assert_eq!(b.get(row, 1), v * v + v);
        }
    }

    #[test]
    fn mul_costs_more_time_than_add() {
        let mut b = MemBlock::new();
        let add = b.arith(AluOp::Add, 0, 0, 2, 0, 1);
        let mul = b.arith(AluOp::Mul, 0, 0, 2, 0, 1);
        let mac = b.arith(AluOp::Mac, 0, 0, 2, 0, 1);
        assert!(mul.seconds > add.seconds);
        assert!(mac.seconds > mul.seconds);
    }

    #[test]
    #[should_panic(expected = "crosses the row edge")]
    fn read_past_row_edge_panics() {
        let mut b = MemBlock::new();
        let _ = b.read_to_buffer(0, 31, 2);
    }

    #[test]
    #[should_panic(expected = "bad row range")]
    fn arith_bad_range_panics() {
        let mut b = MemBlock::new();
        let _ = b.arith(AluOp::Add, 5, 4, 0, 1, 2);
    }
}

#[cfg(test)]
mod oracle_tests {
    //! The vectorized kernels against the retained scalar oracle: for
    //! every [`AluOp`], arbitrary row ranges, arbitrary (including
    //! aliased) column triples, and payloads spanning NaNs, ±inf,
    //! denormals and negative zero, the two engines must agree *bit for
    //! bit* — same cell contents, same cost.

    use super::*;
    use proptest::collection::vec as prop_vec;
    use proptest::prelude::*;

    /// Payload strategy biased toward the IEEE edge cases a wave kernel
    /// never produces but a malformed program might (the finite arm is
    /// repeated to weight it; the shimmed `prop_oneof!` picks uniformly).
    fn arb_payload() -> impl Strategy<Value = f64> {
        prop_oneof![
            -1.0e3f64..1.0e3,
            -1.0e3f64..1.0e3,
            -1.0e3f64..1.0e3,
            -1.0e3f64..1.0e3,
            Just(f64::NAN),
            Just(-f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(f64::MIN_POSITIVE / 8.0), // denormal
            Just(-f64::MIN_POSITIVE / 2.0),
            Just(-0.0f64),
            Just(1.0e308f64), // overflow fodder for Mul/Mac
        ]
    }

    fn arb_op() -> impl Strategy<Value = AluOp> {
        (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
    }

    /// Bit-exact comparison over the whole crossbar, NaN payloads
    /// included.
    fn assert_blocks_bit_identical(v: &MemBlock, s: &MemBlock) {
        for col in 0..WORDS_PER_ROW {
            for row in 0..BLOCK_ROWS {
                let (a, b) = (v.get(row, col), s.get(row, col));
                assert!(
                    a.to_bits() == b.to_bits(),
                    "vector {a:?} != scalar {b:?} at (row {row}, col {col})"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn arith_vector_matches_scalar_oracle(
            op in arb_op(),
            r0 in 0usize..BLOCK_ROWS,
            len in 0usize..BLOCK_ROWS,
            dst in 0usize..WORDS_PER_ROW,
            a in 0usize..WORDS_PER_ROW,
            b in 0usize..WORDS_PER_ROW,
            payload in prop_vec(arb_payload(), 64),
        ) {
            let r1 = (r0 + len).min(BLOCK_ROWS - 1);
            let mut vec_b = MemBlock::new();
            for (i, &v) in payload.iter().enumerate() {
                let row = (r0 + i * 17) % BLOCK_ROWS;
                vec_b.set(row, (i * 7) % WORDS_PER_ROW, v);
            }
            let mut sca_b = vec_b.clone();
            vec_b.arith_cells_vector(op, r0, r1, dst, a, b);
            sca_b.arith_cells_scalar(op, r0, r1, dst, a, b);
            assert_blocks_bit_identical(&vec_b, &sca_b);
        }

        #[test]
        fn arith_public_entry_matches_scalar_cost_and_cells(
            op in arb_op(),
            r0 in 0usize..BLOCK_ROWS,
            len in 0usize..64,
            payload in prop_vec(arb_payload(), 16),
        ) {
            let r1 = (r0 + len).min(BLOCK_ROWS - 1);
            let mut vec_b = MemBlock::new();
            for (i, &v) in payload.iter().enumerate() {
                vec_b.set((r0 + i) % BLOCK_ROWS, i % WORDS_PER_ROW, v);
            }
            let mut sca_b = vec_b.clone();
            let cv = vec_b.arith(op, r0, r1, 5, 0, 1);
            let cs = sca_b.arith_scalar(op, r0, r1, 5, 0, 1);
            prop_assert_eq!(cv, cs, "cost model must not depend on the engine");
            assert_blocks_bit_identical(&vec_b, &sca_b);
        }

        #[test]
        fn broadcast_vector_matches_scalar_oracle(
            r0 in 0usize..BLOCK_ROWS,
            len in 0usize..BLOCK_ROWS,
            offset in 0usize..WORDS_PER_ROW,
            words in 0usize..WORDS_PER_ROW,
            buffer in prop_vec(arb_payload(), WORDS_PER_ROW),
        ) {
            let r1 = (r0 + len).min(BLOCK_ROWS - 1);
            let words = words.min(WORDS_PER_ROW - offset).max(1);
            let mut vec_b = MemBlock::new();
            vec_b.load_row_buffer(&buffer);
            let mut sca_b = vec_b.clone();
            let cv = vec_b.broadcast(r0, r1, offset, words);
            let cs = sca_b.broadcast_scalar(r0, r1, offset, words);
            prop_assert_eq!(cv, cs);
            assert_blocks_bit_identical(&vec_b, &sca_b);
        }
    }
}
