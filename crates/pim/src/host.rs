//! The host CPU model.
//!
//! The PIM is not self-sufficient: "One host CPU (we assume an ARM
//! Cortex-A72 architecture) has to be used for sending instructions and
//! pre-processing part of the input data" (§7.1). Complicated operations
//! — square root and inverse — are offloaded to this host and served from
//! look-up tables (§4.3, §5.1). The Fig. 13 pipeline overlaps this host
//! work with the Volume computation.

use crate::params::HOST_POWER;

/// ARM Cortex-A72 timing model.
#[derive(Debug, Clone, Copy)]
pub struct HostModel {
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// FP square-root latency, cycles (A72 FSQRT: ~17).
    pub sqrt_cycles: u64,
    /// FP divide latency, cycles (A72 FDIV: ~18).
    pub div_cycles: u64,
    /// Sustained PIM-instruction dispatch rate, instructions per cycle.
    pub dispatch_per_cycle: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        Self { clock_hz: 1.5e9, sqrt_cycles: 17, div_cycles: 18, dispatch_per_cycle: 1.0 }
    }
}

impl HostModel {
    /// Seconds and joules to precompute `sqrts` square roots and `divs`
    /// inverses for the LUT contents.
    pub fn preprocess(&self, sqrts: u64, divs: u64) -> (f64, f64) {
        let cycles = sqrts * self.sqrt_cycles + divs * self.div_cycles;
        let seconds = cycles as f64 / self.clock_hz;
        (seconds, seconds * HOST_POWER)
    }

    /// Seconds to dispatch `count` PIM instructions to the chip.
    pub fn dispatch_time(&self, count: u64) -> f64 {
        count as f64 / (self.dispatch_per_cycle * self.clock_hz)
    }

    /// Host power draw, watts.
    pub fn power(&self) -> f64 {
        HOST_POWER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocess_scales_with_work() {
        let h = HostModel::default();
        let (t1, e1) = h.preprocess(100, 0);
        let (t2, e2) = h.preprocess(200, 0);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        let (t3, _) = h.preprocess(0, 100);
        assert!(t3 > t1, "divides are slower than roots on the A72");
    }

    #[test]
    fn dispatch_is_one_per_cycle_by_default() {
        let h = HostModel::default();
        assert!((h.dispatch_time(1_500_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(h.dispatch_time(0), 0.0);
    }

    #[test]
    fn power_comes_from_table_3() {
        assert!((HostModel::default().power() - 3.06).abs() < 1e-12);
    }
}
