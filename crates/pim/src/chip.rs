//! The assembled PIM chip: tiles, blocks, interconnect, controller.
//!
//! [`PimChip::execute`] runs a `pim-isa` instruction stream both
//! *functionally* (block contents change) and *temporally* (a resource
//! timeline tracks when each block, switch and the off-chip channel is
//! busy, so independent work on different blocks overlaps exactly as the
//! row-parallel hardware would). This is the "cycle-accurate PIM
//! simulator" role of §7: fine-grained enough that interconnect conflicts,
//! broadcast costs and off-chip batching transfers all surface in the
//! reported time and energy.
//!
//! # The two lanes
//!
//! The timeline is **dual-lane**. Compute work (block ops, interconnect
//! transfers) advances [`PimChip::elapsed`] directly. Off-chip work —
//! HBM2 DMAs (`LoadOffchip`/`StoreOffchip`) and inter-chip
//! [`PimChip::link_transfer`]s — serializes on its own `offchip` lane
//! and does *not* advance `elapsed` on its own: the paper hides data
//! movement behind compute (the Fig. 6/7 batching schedule, §6.1.2), so
//! an in-flight DMA only costs wall-clock when something actually waits
//! for it. That happens two ways: a compute instruction touching the
//! DMA's target block starts no earlier than the DMA finishes (the data
//! dependency), and an explicit [`PimChip::fence_offchip`] pulls the
//! whole lane into `elapsed` (the cluster runtime issues one before
//! Flux, which is the first kernel that reads ghost data).
//! [`PimChip::finish`] fences implicitly so no off-chip time is ever
//! dropped from the report.

use pim_isa::{AluOp, BlockId, Instr, InstrStream, StreamStats, BLOCK_ROWS, WORDS_PER_ROW};
use pim_trace::{Payload, TID_HOST, TID_INTERCONNECT, TID_OFFCHIP};

use crate::block::MemBlock;
use crate::energy::EnergyLedger;
use crate::host::HostModel;
use crate::interconnect::{
    BusNetwork, HTreeNetwork, Interconnect, InterconnectKind, Resource, Transfer,
};
use crate::params::{self, ChipCapacity, ProcessNode};

/// Chip configuration: capacity (Table 2), interconnect (§4.2), process
/// node (§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipConfig {
    pub capacity: ChipCapacity,
    pub interconnect: InterconnectKind,
    pub node: ProcessNode,
}

impl ChipConfig {
    /// The paper's headline configuration: 2 GB, H-tree, 28 nm.
    pub fn default_2gb() -> Self {
        Self {
            capacity: ChipCapacity::Gb2,
            interconnect: InterconnectKind::HTree,
            node: ProcessNode::Nm28,
        }
    }
}

/// Result of a finished execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecReport {
    /// Wall-clock seconds (after process-node performance scaling).
    pub seconds: f64,
    /// Energy ledger (after process-node energy scaling), including
    /// static energy for the elapsed time.
    pub ledger: EnergyLedger,
}

/// The chip simulator.
///
/// ```
/// use pim_isa::{AluOp, BlockId, Instr, InstrStream};
/// use pim_sim::{ChipConfig, PimChip};
///
/// let mut chip = PimChip::new(ChipConfig::default_2gb());
/// chip.block_mut(BlockId(0)).set(0, 0, 2.0);
/// chip.block_mut(BlockId(0)).set(0, 1, 3.0);
/// let mut program = InstrStream::new();
/// program.push(Instr::Arith {
///     block: BlockId(0), op: AluOp::Mul, first_row: 0, last_row: 0, dst: 2, a: 0, b: 1,
/// });
/// chip.execute(&program);
/// assert_eq!(chip.block(BlockId(0)).get(0, 2), 6.0);
/// assert!(chip.finish().ledger.compute > 0.0);
/// ```
pub struct PimChip {
    config: ChipConfig,
    htree: HTreeNetwork,
    bus: BusNetwork,
    host: HostModel,
    /// Block contents, indexed by `BlockId.0`. Allocation stays lazy —
    /// an untouched block is `None` (a Gb16 chip has 131K blocks ×
    /// 256 KiB each, so materializing all of them up front would be
    /// 32 GiB) — but lookup is a single indexed load into a table of
    /// pointers instead of a hash probe, and the slot can be prefetched
    /// ahead of use (see [`Self::prefetch_instr`]).
    blocks: Vec<Option<Box<MemBlock>>>,
    /// Dense per-block timelines, indexed by `BlockId.0`: the ready/busy
    /// clocks are one `f64` per block, so the interpreter's hot path
    /// indexes flat arrays instead of hashing.
    block_ready: Vec<f64>,
    block_busy: Vec<f64>,
    /// Which blocks any instruction has touched (for utilization over
    /// *active* blocks — a touched block can have 0.0 busy seconds).
    block_touched: Vec<bool>,
    touched_blocks: usize,
    /// Dense per-resource timeline; see [`Self::resource_index`].
    resource_ready: Vec<f64>,
    /// Reusable scratch for routed paths; see [`Self::take_route`].
    route_scratch: Vec<Resource>,
    resource_slots_per_tile: usize,
    offchip_ready: f64,
    host_ready: f64,
    barrier: f64,
    elapsed: f64,
    ledger: EnergyLedger,
    trace_pid: u32,
    metrics_label: String,
    metrics: Option<ChipMetrics>,
    diagnostics: Vec<String>,
}

/// Cached `pim-metrics` handles for one chip, labeled `chip="<label>"`.
/// Allocated lazily on the first update while metrics are enabled, so
/// unmetered runs never touch the registry. The energy counters mirror
/// every [`EnergyLedger`] charge exactly (published as per-`execute`
/// deltas, which telescope to the ledger totals), making the
/// metrics ↔ ledger reconciliation in the bench layer a pure cross-check.
struct ChipMetrics {
    energy: [pim_metrics::FloatCounter; 6],
    instrs: [pim_metrics::Counter; 10],
    dma_bytes: pim_metrics::Counter,
    row_activations: pim_metrics::Counter,
    compute_seconds: pim_metrics::FloatCounter,
    offchip_busy_seconds: pim_metrics::FloatCounter,
    barrier_stall_seconds: pim_metrics::FloatCounter,
    exposed_offchip_seconds: pim_metrics::FloatCounter,
    link_bytes: pim_metrics::Counter,
    link_messages: pim_metrics::Counter,
    link_busy_seconds: pim_metrics::FloatCounter,
}

/// Ledger mechanisms in the order of [`ChipMetrics::energy`].
const MECHANISMS: [&str; 6] = ["compute", "reads", "writes", "interconnect", "offchip", "host"];

/// Instruction classes in the order of [`ChipMetrics::instrs`], matching
/// the `StreamStats` opcode mix.
const INSTR_CLASSES: [&str; 10] = [
    "read",
    "write",
    "broadcast",
    "copy",
    "arith_add",
    "arith_mul",
    "lut",
    "load_offchip",
    "store_offchip",
    "sync",
];

impl ChipMetrics {
    fn new(label: &str) -> Self {
        let reg = pim_metrics::global();
        let chip = [("chip", label)];
        Self {
            energy: std::array::from_fn(|i| {
                reg.float_counter(
                    "pim_chip_energy_joules_total",
                    &[("chip", label), ("mechanism", MECHANISMS[i])],
                )
            }),
            instrs: std::array::from_fn(|i| {
                reg.counter("pim_chip_instrs_total", &[("chip", label), ("op", INSTR_CLASSES[i])])
            }),
            dma_bytes: reg.counter("pim_chip_dma_bytes_total", &chip),
            row_activations: reg.counter("pim_chip_row_activations_total", &chip),
            compute_seconds: reg.float_counter("pim_chip_compute_seconds_total", &chip),
            offchip_busy_seconds: reg.float_counter("pim_chip_offchip_busy_seconds_total", &chip),
            barrier_stall_seconds: reg.float_counter("pim_chip_barrier_stall_seconds_total", &chip),
            exposed_offchip_seconds: reg
                .float_counter("pim_chip_exposed_offchip_seconds_total", &chip),
            link_bytes: reg.counter("pim_chip_link_bytes_total", &chip),
            link_messages: reg.counter("pim_chip_link_messages_total", &chip),
            link_busy_seconds: reg.float_counter("pim_chip_link_busy_seconds_total", &chip),
        }
    }

    fn add_energy_delta(&self, before: &EnergyLedger, after: &EnergyLedger) {
        let deltas = [
            after.compute - before.compute,
            after.reads - before.reads,
            after.writes - before.writes,
            after.interconnect - before.interconnect,
            after.offchip - before.offchip,
            after.host - before.host,
        ];
        for (counter, delta) in self.energy.iter().zip(deltas) {
            if delta != 0.0 {
                counter.add(delta);
            }
        }
    }

    fn add_opcode_mix(&self, stats: &StreamStats) {
        let counts = [
            stats.reads,
            stats.writes,
            stats.broadcasts,
            stats.copies,
            stats.arith_addlike,
            stats.arith_mullike,
            stats.luts,
            stats.offchip_loads,
            stats.offchip_stores,
            stats.syncs,
        ];
        for (counter, count) in self.instrs.iter().zip(counts) {
            if count != 0 {
                counter.add(count);
            }
        }
    }
}

/// The single block a purely block-local instruction occupies, or `None`
/// for instructions that touch the interconnect, the off-chip channel,
/// the barrier, or more than one block. Consecutive instructions that
/// agree on `Some(block)` are fused into one [`PimChip::execute_block_run`].
#[inline]
fn block_local(instr: &Instr) -> Option<BlockId> {
    match *instr {
        Instr::Read { block, .. }
        | Instr::Write { block, .. }
        | Instr::Broadcast { block, .. }
        | Instr::Arith { block, .. } => Some(block),
        Instr::Copy { .. }
        | Instr::Lut { .. }
        | Instr::Sync
        | Instr::LoadOffchip { .. }
        | Instr::StoreOffchip { .. } => None,
    }
}

/// Hints the cells a block-local instruction will touch in `b` (which
/// the caller has already resolved to the instruction's target block).
/// `Copy` moves row buffers only and DMAs touch no cells, so neither
/// appears here. Store targets use the write-intent hint. Ops that go
/// through the row buffer also hint the buffer itself — the per-block
/// structs are tiny but there are thousands of them, so they miss just
/// like the plane data once the working set outgrows the caches.
#[inline]
fn prefetch_block_local(b: &MemBlock, instr: &Instr) {
    match *instr {
        Instr::Read { row, offset, words, .. } => {
            b.prefetch_row_buffer();
            b.prefetch_words(row as usize, offset as usize, words as usize, false);
        }
        Instr::Write { row, offset, words, .. } => {
            b.prefetch_row_buffer();
            b.prefetch_words(row as usize, offset as usize, words as usize, true);
        }
        Instr::Broadcast { dst_first, dst_last, offset, words, .. } => {
            b.prefetch_row_buffer();
            for w in 0..words as usize {
                b.prefetch_col(offset as usize + w, dst_first as usize, dst_last as usize, true);
            }
        }
        Instr::Arith { first_row, last_row, dst, a, b: rhs, .. } => {
            let (first, last) = (first_row as usize, last_row as usize);
            b.prefetch_col(a as usize, first, last, false);
            b.prefetch_col(rhs as usize, first, last, false);
            b.prefetch_col(dst as usize, first, last, true);
        }
        _ => {}
    }
}

/// Static op name for trace payloads.
fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Mac => "mac",
        AluOp::Neg => "neg",
        AluOp::Mov => "mov",
    }
}

/// How far past the segment being executed the prefetch cursor in
/// [`PimChip::execute`] runs. Executing one instruction costs tens of
/// nanoseconds, so 16 instructions of lookahead gives each hinted
/// line comfortably more than a DRAM round-trip to arrive while still
/// bounding how many line-fill buffers the hints occupy (measured:
/// 16 beats both 8 and 32 on the level-5 workload).
const PREFETCH_AHEAD: usize = 16;

impl PimChip {
    pub fn new(config: ChipConfig) -> Self {
        let htree = HTreeNetwork::new();
        let num_blocks = config.capacity.num_blocks() as usize;
        let num_tiles = num_blocks / pim_isa::BLOCKS_PER_TILE;
        // One slot per tile bus plus one per H-tree switch; slot 0 is the
        // chip router. The denser of the two interconnects sizes the
        // table so either kind indexes without collisions.
        let resource_slots_per_tile = 1 + htree.switches_per_tile() as usize;
        Self {
            config,
            htree,
            bus: BusNetwork::new(),
            host: HostModel::default(),
            blocks: {
                let mut v = Vec::new();
                v.resize_with(num_blocks, || None);
                v
            },
            block_ready: vec![0.0; num_blocks],
            block_busy: vec![0.0; num_blocks],
            block_touched: vec![false; num_blocks],
            touched_blocks: 0,
            resource_ready: vec![0.0; 1 + num_tiles * resource_slots_per_tile],
            route_scratch: Vec::new(),
            resource_slots_per_tile,
            offchip_ready: 0.0,
            host_ready: 0.0,
            barrier: 0.0,
            elapsed: 0.0,
            ledger: EnergyLedger::default(),
            trace_pid: 0,
            metrics_label: format!("pim-chip {}", config.capacity.name()),
            metrics: None,
            diagnostics: Vec::new(),
        }
    }

    /// Diagnostics recorded by the interpreter for malformed programs
    /// (e.g. a LUT index addressing past the table block). A well-formed
    /// program leaves this empty.
    pub fn diagnostics(&self) -> &[String] {
        &self.diagnostics
    }

    /// Drains and returns the accumulated diagnostics.
    pub fn take_diagnostics(&mut self) -> Vec<String> {
        std::mem::take(&mut self.diagnostics)
    }

    /// Labels this chip's metrics `chip="<label>"` instead of the default
    /// `pim-chip <capacity>`. The cluster runtime assigns stable indices.
    /// No-op once the first metric has been recorded.
    pub fn set_metrics_label(&mut self, label: impl Into<String>) {
        if self.metrics.is_none() {
            self.metrics_label = label.into();
        }
    }

    /// The label this chip's metrics are (or will be) recorded under.
    pub fn metrics_label(&self) -> &str {
        &self.metrics_label
    }

    /// Cached metric handles, allocated on first use.
    fn metrics(&mut self) -> &ChipMetrics {
        if self.metrics.is_none() {
            self.metrics = Some(ChipMetrics::new(&self.metrics_label));
        }
        self.metrics.as_ref().expect("just initialized")
    }

    /// This chip's trace process id (lazily allocated so untraced runs
    /// never touch the trace registry).
    pub fn trace_pid(&mut self) -> u32 {
        if self.trace_pid == 0 {
            self.trace_pid =
                pim_trace::alloc_pid(format!("pim-chip {}", self.config.capacity.name()));
        }
        self.trace_pid
    }

    /// Registers this chip's trace swimlane under `label` instead of the
    /// default `pim-chip <capacity>`. The cluster runtime uses this to
    /// give every chip its own named process row. No-op after the pid has
    /// been allocated.
    pub fn set_trace_label(&mut self, label: impl Into<String>) {
        if self.trace_pid == 0 {
            self.trace_pid = pim_trace::alloc_pid(label);
        }
    }

    /// Records an instruction-level span on this chip's trace process.
    /// Timestamps are *unscaled* simulated seconds — the same clock as
    /// [`Self::elapsed`] — and the energy payload is exactly the joules
    /// charged to the ledger, so drained traces reconcile against
    /// [`Self::finish`] without slack.
    #[inline]
    fn trace(&mut self, tid: u32, t0: f64, t1: f64, payload: Payload) {
        if pim_trace::enabled() {
            let pid = self.trace_pid();
            pim_trace::record_span(pid, tid, t0, t1, payload);
        }
    }

    pub fn config(&self) -> ChipConfig {
        self.config
    }

    /// The raw (unscaled, dynamic-only) energy ledger accumulated so far.
    /// [`Self::finish`] applies process-node scaling and static power; this
    /// accessor exposes the running totals so external instrumentation
    /// (the cluster runner's per-kernel energy attribution) can take
    /// deltas around individual executions.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Total busy seconds summed over every touched block — the numerator
    /// of a capacity-utilization figure: a chip with `num_blocks()` blocks
    /// idle for `num_blocks() × elapsed − total_block_busy_seconds()`
    /// block-seconds.
    pub fn total_block_busy_seconds(&self) -> f64 {
        self.block_busy.iter().sum()
    }

    pub fn host(&self) -> &HostModel {
        &self.host
    }

    /// Read access to a block's storage (allocating it zeroed if new).
    pub fn block(&mut self, id: BlockId) -> &MemBlock {
        self.check_block(id);
        self.blocks[id.0 as usize].get_or_insert_with(Box::default)
    }

    /// Mutable access for host-side preloading of inputs and LUT contents
    /// (§4.3: contents are loaded "before the computation begins"; the
    /// time/energy for bulk preload is charged via `LoadOffchip`
    /// instructions, not here).
    pub fn block_mut(&mut self, id: BlockId) -> &mut MemBlock {
        self.check_block(id);
        self.blocks[id.0 as usize].get_or_insert_with(Box::default)
    }

    fn check_block(&self, id: BlockId) {
        assert!(
            (id.0 as u64) < self.config.capacity.num_blocks(),
            "block {} exceeds the {} chip's {} blocks",
            id.0,
            self.config.capacity.name(),
            self.config.capacity.num_blocks()
        );
    }

    /// Unscaled simulated seconds of the *compute* lane so far. Off-chip
    /// work still in flight (see the module docs' dual-lane model) is not
    /// included until a dependent instruction or [`Self::fence_offchip`]
    /// pulls it in; [`Self::offchip_time`] exposes that lane.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Absolute simulated time at which the off-chip lane (HBM2 DMAs and
    /// inter-chip link transfers) frees up. May run ahead of
    /// [`Self::elapsed`] while data movement is hidden behind compute.
    pub fn offchip_time(&self) -> f64 {
        self.offchip_ready
    }

    /// Joins the off-chip lane into the compute timeline: `elapsed`
    /// advances to cover every issued DMA and link transfer. The cluster
    /// runtime issues this before Flux — the first kernel that consumes
    /// halo data — so Volume overlaps the exchange and only Flux pays for
    /// whatever the overlap could not hide. Returns the new elapsed time.
    pub fn fence_offchip(&mut self) -> f64 {
        if pim_metrics::enabled() {
            // The measured exposed off-chip time: how far the off-chip
            // lane ran ahead of compute when something had to wait for it.
            let exposed = (self.offchip_ready - self.elapsed).max(0.0);
            if exposed > 0.0 {
                self.metrics().exposed_offchip_seconds.add(exposed);
            }
        }
        self.elapsed = self.elapsed.max(self.offchip_ready);
        self.elapsed
    }

    /// Absolute simulated time at which `block`'s last scheduled access
    /// — compute op or DMA — completes. This is the per-block readiness
    /// the pipelined cluster protocol fences on: a consumer of one ghost
    /// block need not wait for unrelated traffic still draining on the
    /// off-chip lane.
    pub fn block_ready_time(&self, id: BlockId) -> f64 {
        self.check_block(id);
        self.block_ready[id.0 as usize]
    }

    /// Latest readiness over `blocks` ([`Self::block_ready_time`]);
    /// 0 when `blocks` is empty.
    pub fn blocks_ready_time(&self, blocks: &[BlockId]) -> f64 {
        blocks.iter().fold(0.0f64, |m, &b| m.max(self.block_ready_time(b)))
    }

    /// Partial fence: joins the compute lane to exactly the given
    /// blocks' readiness instead of the whole off-chip lane. Where
    /// [`Self::fence_offchip`] charges the stage for every DMA and link
    /// transfer in flight, this waits only for the blocks the next
    /// kernel actually reads — outbound link charges and unrelated DMAs
    /// keep draining on the off-chip lane concurrently with compute.
    /// Because every fenced block's readiness is ≤ the lane's ready
    /// time, `fence_blocks` never advances `elapsed` past what
    /// `fence_offchip` would. Returns the new elapsed time.
    pub fn fence_blocks(&mut self, blocks: &[BlockId]) -> f64 {
        let ready = self.blocks_ready_time(blocks);
        if pim_metrics::enabled() {
            let exposed = (ready - self.elapsed).max(0.0);
            if exposed > 0.0 {
                self.metrics().exposed_offchip_seconds.add(exposed);
            }
        }
        self.elapsed = self.elapsed.max(ready);
        self.elapsed
    }

    /// Fraction of the elapsed time a block spent busy (0 for untouched
    /// blocks) — the per-block view of the paper's resource-utilization
    /// discussion (§6.2.1).
    pub fn block_utilization(&self, id: BlockId) -> f64 {
        if self.elapsed <= 0.0 {
            return 0.0;
        }
        self.block_busy.get(id.0 as usize).copied().unwrap_or(0.0) / self.elapsed
    }

    /// Mean utilization over the blocks that were touched at all.
    pub fn mean_active_utilization(&self) -> f64 {
        if self.touched_blocks == 0 || self.elapsed <= 0.0 {
            return 0.0;
        }
        self.block_busy.iter().sum::<f64>() / (self.touched_blocks as f64 * self.elapsed)
    }

    /// Routes `src → dst` into the chip's reusable scratch path and
    /// returns it (the caller hands it back via [`Self::put_route`]).
    /// Taking the vector out keeps the borrow checker happy while the
    /// caller goes on to mutate timelines, and reuses one allocation
    /// across every `Copy`/`Lut` of a stream.
    fn take_route(&mut self, src: BlockId, dst: BlockId) -> Vec<Resource> {
        let mut path = std::mem::take(&mut self.route_scratch);
        match self.config.interconnect {
            InterconnectKind::HTree => self.htree.route_into(src, dst, &mut path),
            InterconnectKind::Bus => self.bus.route_into(src, dst, &mut path),
        }
        path
    }

    fn put_route(&mut self, path: Vec<Resource>) {
        self.route_scratch = path;
    }

    /// Transfer duration and energy, with the hop count taken from the
    /// already-routed path rather than re-deriving the route.
    fn transfer_cost(&self, t: &Transfer, hops: usize) -> (f64, f64) {
        match self.config.interconnect {
            InterconnectKind::HTree => {
                (self.htree.duration(t), self.htree.energy_with_hops(t, hops))
            }
            InterconnectKind::Bus => (self.bus.duration(t), self.bus.energy_with_hops(t, hops)),
        }
    }

    /// Dense slot of an interconnect resource in [`Self::resource_ready`]:
    /// slot 0 is the chip router; each tile then gets a contiguous run of
    /// `resource_slots_per_tile` slots — its bus first, then its H-tree
    /// switches in [`HTreeNetwork::switch_slot`] order.
    #[inline]
    fn resource_index(&self, r: &Resource) -> usize {
        match *r {
            Resource::ChipRouter => 0,
            Resource::TileBus { tile } => 1 + tile as usize * self.resource_slots_per_tile,
            Resource::Switch { tile, level, index } => {
                1 + tile as usize * self.resource_slots_per_tile
                    + 1
                    + self.htree.switch_slot(level, index) as usize
            }
        }
    }

    #[inline]
    fn mark_touched(&mut self, idx: usize) {
        if !self.block_touched[idx] {
            self.block_touched[idx] = true;
            self.touched_blocks += 1;
        }
    }

    fn block_start(&self, id: BlockId) -> f64 {
        self.check_block(id); // keeps the capacity panic message, not an index panic
        self.block_ready[id.0 as usize].max(self.barrier)
    }

    fn finish_block(&mut self, id: BlockId, at: f64) {
        let idx = id.0 as usize;
        let start = self.block_ready[idx].max(self.barrier);
        self.mark_touched(idx);
        self.block_busy[idx] += (at - start).max(0.0);
        self.block_ready[idx] = at;
        self.elapsed = self.elapsed.max(at);
    }

    /// Off-chip variant of [`Self::finish_block`]: the DMA occupies the
    /// block (so dependent compute waits for the data) but does *not*
    /// advance `elapsed` — the transfer rides the off-chip lane until
    /// something depends on it.
    fn finish_block_offchip(&mut self, id: BlockId, start: f64, at: f64) {
        let idx = id.0 as usize;
        self.mark_touched(idx);
        self.block_busy[idx] += (at - start).max(0.0);
        self.block_ready[idx] = at;
    }

    /// Executes a stream. Instructions issue in order; execution overlaps
    /// wherever the resources (blocks, switches, off-chip channel) are
    /// disjoint. `Sync` is a full barrier.
    ///
    /// Runs of consecutive instructions on the *same* block — the
    /// compiler's dominant shape, since each element's kernel is a burst
    /// of row-parallel ops on its home block — take a batched fast path
    /// ([`Self::execute_block_run`]) that looks the block up once and
    /// replays the per-op bookkeeping in one pass.
    pub fn execute(&mut self, stream: &InstrStream) {
        // Metrics are published once per stream from the ledger/clock
        // deltas and the precomputed `StreamStats` — the per-instruction
        // path stays untouched, so the disabled cost is one relaxed load
        // per `execute`, not per instruction.
        let before = pim_metrics::enabled().then_some((self.ledger, self.elapsed));
        let instrs = stream.instrs();
        let mut spans = Vec::new();
        let mut i = 0;
        // Decoupled access/execute: the whole stream is known up front,
        // so a prefetch cursor runs ahead of the instruction being
        // executed and hints the cells it will touch into the caches.
        // At cluster scale the plane working set is GBs spread over
        // thousands of blocks — without the hints nearly every cell
        // access is a dependent DRAM miss paid one at a time.
        let mut pf = 0;
        while i < instrs.len() {
            let Some(block) = block_local(&instrs[i]) else {
                self.prefetch_to(instrs, &mut pf, i + 1 + PREFETCH_AHEAD);
                self.execute_one(&instrs[i]);
                i += 1;
                continue;
            };
            let mut j = i + 1;
            while j < instrs.len() && block_local(&instrs[j]) == Some(block) {
                j += 1;
            }
            if j - i >= 2 {
                self.execute_block_run(block, instrs, i, j, &mut pf, &mut spans);
            } else {
                self.prefetch_to(instrs, &mut pf, j + PREFETCH_AHEAD);
                self.execute_one(&instrs[i]);
            }
            i = j;
        }
        // Host dispatch of the whole stream is a lower bound on elapsed
        // time: the chip cannot outrun its instruction feed.
        let dispatch = self.host.dispatch_time(stream.len() as u64);
        let joules = dispatch * self.host.power();
        self.ledger.host += joules;
        self.elapsed = self.elapsed.max(dispatch);
        // The host lane has been busy at least this long; a later
        // preprocess call anchors after it.
        self.host_ready = self.host_ready.max(dispatch);
        // The lower bound is absolute (measured from t = 0), so the span
        // is too.
        self.trace(
            TID_HOST,
            0.0,
            dispatch,
            Payload::HostCall { call: "dispatch", count: stream.len() as u64, energy_j: joules },
        );
        if let Some((ledger_before, elapsed_before)) = before {
            let ledger_after = self.ledger;
            let elapsed_after = self.elapsed;
            let stats = *stream.stats();
            let rows = stats.row_activations();
            let metrics = self.metrics();
            metrics.add_energy_delta(&ledger_before, &ledger_after);
            metrics.add_opcode_mix(&stats);
            metrics.compute_seconds.add(elapsed_after - elapsed_before);
            if stats.offchip_bytes > 0 {
                metrics.dma_bytes.add(stats.offchip_bytes);
                metrics
                    .offchip_busy_seconds
                    .add(stats.offchip_bytes as f64 / params::OFFCHIP_BANDWIDTH);
            }
            if rows > 0 {
                metrics.row_activations.add(rows);
            }
        }
    }

    /// Best-effort prefetch of the plane cells `instr` will touch.
    /// Only already-materialized blocks are hinted (a `None` slot means
    /// the block is still all zeros and will be allocated on first
    /// touch); nothing observable changes either way.
    #[inline]
    fn prefetch_instr(&self, instr: &Instr) {
        let resident = |id: BlockId| self.blocks.get(id.0 as usize).and_then(|s| s.as_deref());
        match *instr {
            Instr::Lut { row, offset_s, lut_block, offset_d } => {
                let holder = BlockId(row / BLOCK_ROWS as u32);
                let row_in_block = row as usize % BLOCK_ROWS;
                if let Some(b) = resident(holder) {
                    b.prefetch_words(row_in_block, offset_d as usize, 1, true);
                    // The content fetch is data-dependent, so peek at
                    // the index word now: if an instruction between the
                    // cursor and execution rewrites it we merely hint a
                    // stale line — the real access re-reads the cell.
                    let raw = b.get(row_in_block, offset_s as usize);
                    if let (Ok(index), Some(lut)) =
                        (pim_isa::lut::try_index_word(raw), resident(BlockId(lut_block)))
                    {
                        let index = index as usize;
                        lut.prefetch_words(index / WORDS_PER_ROW, index % WORDS_PER_ROW, 1, false);
                    }
                }
            }
            Instr::Copy { src, dst, .. } => {
                // Copy moves one row buffer into another: no plane
                // cells, but both block structs get touched.
                if let Some(b) = resident(src) {
                    b.prefetch_row_buffer();
                }
                if let Some(b) = resident(dst) {
                    b.prefetch_row_buffer();
                }
            }
            _ => {
                if let Some(b) = block_local(instr).and_then(resident) {
                    prefetch_block_local(b, instr);
                }
            }
        }
    }

    /// Advances the prefetch cursor `pf` to `target` (clamped to the
    /// stream end), hinting each passed instruction's cells.
    #[inline]
    fn prefetch_to(&self, instrs: &[Instr], pf: &mut usize, target: usize) {
        let target = target.min(instrs.len());
        while *pf < target {
            self.prefetch_instr(&instrs[*pf]);
            *pf += 1;
        }
    }

    /// Batched fast path for a run of ≥2 consecutive block-local
    /// instructions (Read/Write/Broadcast/Arith) on one block: one
    /// capacity check and one block-map lookup for the whole run, with
    /// the per-op ledger charges, busy/ready clock updates and trace
    /// spans replayed in exactly the order the one-at-a-time path
    /// produces. Within a run every op starts when the previous one
    /// finishes (same block ⇒ fully serialized), so the clock chain is
    /// a running `t` rather than repeated timeline lookups; the f64
    /// accumulation order of every observable (ledger joules, busy
    /// seconds, elapsed) is preserved bit for bit.
    ///
    /// `spans` is caller-owned scratch (drained before returning) so a
    /// traced run reuses one allocation across the stream.
    ///
    /// The run is `instrs[i..j]`; the full stream and the prefetch
    /// cursor `pf` come along so the lookahead keeps pacing itself one
    /// instruction at a time through the run (issuing a long run's
    /// hints in one burst would overflow the core's fill buffers and
    /// get most of them dropped). The block is *taken out* of its slot
    /// for the duration so the cursor can still hint other blocks
    /// through `&self`; run-local targets are hinted directly.
    fn execute_block_run(
        &mut self,
        block: BlockId,
        instrs: &[Instr],
        i: usize,
        j: usize,
        pf: &mut usize,
        spans: &mut Vec<(f64, f64, Payload)>,
    ) {
        self.check_block(block);
        let idx = block.0 as usize;
        self.mark_touched(idx);
        let tracing = pim_trace::enabled();
        let mut t = self.block_ready[idx].max(self.barrier);
        let mut busy = self.block_busy[idx];
        let mut b = self.blocks[idx].take().unwrap_or_default();
        for (k, instr) in instrs[i..j].iter().enumerate() {
            let ahead = (i + k + 1 + PREFETCH_AHEAD).min(instrs.len());
            while *pf < ahead {
                let upcoming = &instrs[*pf];
                if block_local(upcoming) == Some(block) {
                    prefetch_block_local(&b, upcoming);
                } else {
                    self.prefetch_instr(upcoming);
                }
                *pf += 1;
            }
            let (cost, payload) = match *instr {
                Instr::Read { row, offset, words, .. } => {
                    let cost = b.read_to_buffer(row as usize, offset as usize, words as usize);
                    self.ledger.reads += cost.joules;
                    (cost, Payload::BlockOp { op: "read", nor_cycles: 0, energy_j: cost.joules })
                }
                Instr::Write { row, offset, words, .. } => {
                    let cost = b.write_from_buffer(row as usize, offset as usize, words as usize);
                    self.ledger.writes += cost.joules;
                    (cost, Payload::BlockOp { op: "write", nor_cycles: 0, energy_j: cost.joules })
                }
                Instr::Broadcast { dst_first, dst_last, offset, words, .. } => {
                    let cost = b.broadcast(
                        dst_first as usize,
                        dst_last as usize,
                        offset as usize,
                        words as usize,
                    );
                    self.ledger.writes += cost.joules;
                    (
                        cost,
                        Payload::BlockOp { op: "broadcast", nor_cycles: 0, energy_j: cost.joules },
                    )
                }
                Instr::Arith { op, first_row, last_row, dst, a, b: rhs, .. } => {
                    let cost = b.arith(
                        op,
                        first_row as usize,
                        last_row as usize,
                        dst as usize,
                        a as usize,
                        rhs as usize,
                    );
                    self.ledger.compute += cost.joules;
                    (
                        cost,
                        Payload::BlockOp {
                            op: alu_name(op),
                            nor_cycles: params::alu_cycles(op),
                            energy_j: cost.joules,
                        },
                    )
                }
                _ => unreachable!("execute_block_run only fuses block-local instructions"),
            };
            // Identical to finish_block op by op: the previous op's
            // finish time is ≥ the barrier, so `.max(barrier)` would
            // return it unchanged.
            let t1 = t + cost.seconds;
            busy += (t1 - t).max(0.0);
            if tracing {
                spans.push((t, t1, payload));
            }
            t = t1;
        }
        self.blocks[idx] = Some(b);
        self.block_busy[idx] = busy;
        self.block_ready[idx] = t;
        self.elapsed = self.elapsed.max(t);
        for (t0, t1, payload) in spans.drain(..) {
            self.trace(block.0, t0, t1, payload);
        }
    }

    fn execute_one(&mut self, instr: &Instr) {
        match *instr {
            Instr::Sync => {
                // Monotone: a Sync must never *lower* an externally
                // advanced barrier (the cluster aligns chips with
                // `advance_barrier` at times the local clock has not
                // reached yet).
                self.barrier = self.barrier.max(self.elapsed);
            }
            Instr::Read { block, row, offset, words } => {
                let start = self.block_start(block);
                let cost = self.block_mut(block).read_to_buffer(
                    row as usize,
                    offset as usize,
                    words as usize,
                );
                self.ledger.reads += cost.joules;
                self.finish_block(block, start + cost.seconds);
                self.trace(
                    block.0,
                    start,
                    start + cost.seconds,
                    Payload::BlockOp { op: "read", nor_cycles: 0, energy_j: cost.joules },
                );
            }
            Instr::Write { block, row, offset, words } => {
                let start = self.block_start(block);
                let cost = self.block_mut(block).write_from_buffer(
                    row as usize,
                    offset as usize,
                    words as usize,
                );
                self.ledger.writes += cost.joules;
                self.finish_block(block, start + cost.seconds);
                self.trace(
                    block.0,
                    start,
                    start + cost.seconds,
                    Payload::BlockOp { op: "write", nor_cycles: 0, energy_j: cost.joules },
                );
            }
            Instr::Broadcast { block, dst_first, dst_last, offset, words } => {
                let start = self.block_start(block);
                let cost = self.block_mut(block).broadcast(
                    dst_first as usize,
                    dst_last as usize,
                    offset as usize,
                    words as usize,
                );
                self.ledger.writes += cost.joules;
                self.finish_block(block, start + cost.seconds);
                self.trace(
                    block.0,
                    start,
                    start + cost.seconds,
                    Payload::BlockOp { op: "broadcast", nor_cycles: 0, energy_j: cost.joules },
                );
            }
            Instr::Arith { block, op, first_row, last_row, dst, a, b } => {
                let start = self.block_start(block);
                let cost = self.block_mut(block).arith(
                    op,
                    first_row as usize,
                    last_row as usize,
                    dst as usize,
                    a as usize,
                    b as usize,
                );
                self.ledger.compute += cost.joules;
                self.finish_block(block, start + cost.seconds);
                self.trace(
                    block.0,
                    start,
                    start + cost.seconds,
                    Payload::BlockOp {
                        op: alu_name(op),
                        nor_cycles: params::alu_cycles(op),
                        energy_j: cost.joules,
                    },
                );
            }
            Instr::Copy { src, dst, words } => {
                let t = Transfer { src, dst, words: words as u32 };
                let path = self.take_route(src, dst);
                let (dur, joules) = self.transfer_cost(&t, path.len());
                let mut start = self.block_start(src).max(self.block_start(dst));
                for r in &path {
                    start = start.max(self.resource_ready[self.resource_index(r)]);
                }
                let finish = start + dur;
                for r in &path {
                    let slot = self.resource_index(r);
                    self.resource_ready[slot] = finish;
                }
                self.put_route(path);
                // Move the data: source row buffer → destination buffer.
                let buf = *self.block(src).row_buffer();
                self.block_mut(dst).load_row_buffer(&buf[..(words as usize).min(WORDS_PER_ROW)]);
                self.ledger.interconnect += joules;
                self.finish_block(src, finish);
                self.finish_block(dst, finish);
                self.trace(
                    TID_INTERCONNECT,
                    start,
                    finish,
                    Payload::Transfer { bytes: words as u64 * 4, energy_j: joules },
                );
            }
            Instr::Lut { row, offset_s, lut_block, offset_d } => {
                // Algorithm 1: read the index, fetch the content from the
                // LUT block, write it back — "a special case of
                // inter-block data transmission" (§4.3).
                let holder = BlockId(row / BLOCK_ROWS as u32);
                let row_in_block = (row as usize) % BLOCK_ROWS;
                let lut = BlockId(lut_block);

                let start = self.block_start(holder).max(self.block_start(lut));

                let (raw, read1_joules) = {
                    let b = self.block_mut(holder);
                    let cost = b.read_to_buffer(row_in_block, offset_s as usize, 1);
                    (b.row_buffer()[0], cost.joules)
                };
                self.ledger.reads += read1_joules;
                // Validate the raw word (negative and NaN words would
                // silently cast to index 0), then route the rounded index
                // through the fallible expansion so a malformed program
                // (index past the table block) becomes a diagnostic, not a
                // crash or a bogus entry-0 fetch: the index read that
                // physically happened stays charged, the content fetch and
                // write-back are skipped.
                let checked = pim_isa::lut::try_index_word(raw)
                    .and_then(|index| pim_isa::lut::try_expand(instr, index).map(|_| index));
                let index = match checked {
                    Ok(index) => index as usize,
                    Err(e) => {
                        self.diagnostics.push(format!(
                            "skipped Lut at row {row} offset_s {offset_s}: {e} \
                             (index word read as {raw})"
                        ));
                        // The skip's timeline matches the normal path's
                        // shape: both blocks the instruction reserved are
                        // released at the point the failure was detected,
                        // and the span that physically happened is traced
                        // through the same self-gating `trace` as every
                        // other instruction.
                        self.finish_block(holder, start + params::T_SEARCH);
                        self.finish_block(lut, start + params::T_SEARCH);
                        self.trace(
                            holder.0,
                            start,
                            start + params::T_SEARCH,
                            Payload::BlockOp { op: "read", nor_cycles: 0, energy_j: read1_joules },
                        );
                        return;
                    }
                };
                let (content, read2_joules) = {
                    let b = self.block_mut(lut);
                    let cost = b.read_to_buffer(index / WORDS_PER_ROW, index % WORDS_PER_ROW, 1);
                    (b.row_buffer()[0], cost.joules)
                };
                self.ledger.reads += read2_joules;

                let t = Transfer { src: lut, dst: holder, words: 1 };
                let path = self.take_route(lut, holder);
                let (dur, joules) = self.transfer_cost(&t, path.len());
                let mut xfer_start = start + 2.0 * params::T_SEARCH;
                for r in &path {
                    xfer_start = xfer_start.max(self.resource_ready[self.resource_index(r)]);
                }
                let xfer_finish = xfer_start + dur;
                for r in &path {
                    let slot = self.resource_index(r);
                    self.resource_ready[slot] = xfer_finish;
                }
                self.put_route(path);
                self.ledger.interconnect += joules;

                let b = self.block_mut(holder);
                b.load_row_buffer(&[content]);
                let wcost = b.write_from_buffer(row_in_block, offset_d as usize, 1);
                self.ledger.writes += wcost.joules;
                let finish = xfer_finish + wcost.seconds;
                self.finish_block(holder, finish);
                self.finish_block(lut, finish);
                if pim_trace::enabled() {
                    // Algorithm 1 decomposed on the timeline: index read,
                    // LUT content read, switch transfer, result write.
                    self.trace(
                        holder.0,
                        start,
                        start + params::T_SEARCH,
                        Payload::BlockOp { op: "read", nor_cycles: 0, energy_j: read1_joules },
                    );
                    self.trace(
                        lut.0,
                        start + params::T_SEARCH,
                        start + 2.0 * params::T_SEARCH,
                        Payload::BlockOp { op: "read", nor_cycles: 0, energy_j: read2_joules },
                    );
                    self.trace(
                        TID_INTERCONNECT,
                        xfer_start,
                        xfer_finish,
                        Payload::Transfer { bytes: 4, energy_j: joules },
                    );
                    self.trace(
                        holder.0,
                        xfer_finish,
                        finish,
                        Payload::BlockOp { op: "write", nor_cycles: 0, energy_j: wcost.joules },
                    );
                }
            }
            Instr::LoadOffchip { block, bytes } | Instr::StoreOffchip { block, bytes } => {
                let dur = bytes as f64 / params::OFFCHIP_BANDWIDTH;
                // A DMA is clamped to the stage barrier like every other
                // instruction — explicitly, so the invariant no longer
                // hinges on `block_start` happening to fold the barrier
                // in. `link_transfer` clamps the same way.
                let start = self.block_start(block).max(self.offchip_ready).max(self.barrier);
                let finish = start + dur;
                self.offchip_ready = finish;
                let joules = bytes as f64 * (params::OFFCHIP_POWER / params::OFFCHIP_BANDWIDTH);
                self.ledger.offchip += joules;
                self.finish_block_offchip(block, start, finish);
                self.trace(
                    TID_OFFCHIP,
                    start,
                    finish,
                    Payload::Offchip { bytes: bytes as u64, energy_j: joules },
                );
            }
        }
    }

    /// Charges one endpoint of an inter-chip halo message to this chip:
    /// the transfer serializes on the off-chip port (shared with HBM2
    /// DMAs), its energy lands in `ledger.offchip`, and the span is
    /// traced on the off-chip lane. Like a DMA, the transfer rides the
    /// off-chip lane without advancing [`Self::elapsed`] — compute keeps
    /// running until [`Self::fence_offchip`] (or a dependent block op)
    /// joins the lanes. Returns the seconds this chip spent on the
    /// message.
    pub fn link_transfer(&mut self, link: &crate::link::InterChipLink, bytes: u64) -> f64 {
        self.link_transfer_tagged(link, bytes, 0.0, 0, false)
    }

    /// Like [`Self::link_transfer`], but the transfer additionally
    /// cannot start before `available_at` — the sender-side causality
    /// floor the pipelined cluster protocol puts under receive-side
    /// charges, so a chip running ahead of its neighbor cannot take
    /// delivery of a payload before that neighbor even entered the
    /// stage that produces it.
    pub fn link_transfer_from(
        &mut self,
        link: &crate::link::InterChipLink,
        bytes: u64,
        available_at: f64,
    ) -> f64 {
        self.link_transfer_tagged(link, bytes, available_at, 0, true)
    }

    /// The fully-annotated link charge: [`Self::link_transfer_from`]
    /// plus the causal tags the trace carries — `flow` is the
    /// cluster-unique id both endpoints of one halo message share
    /// (0 = untagged) and `inbound` marks the receive side. Timing,
    /// energy and metrics are identical to the untagged variants.
    pub fn link_transfer_tagged(
        &mut self,
        link: &crate::link::InterChipLink,
        bytes: u64,
        available_at: f64,
        flow: u64,
        inbound: bool,
    ) -> f64 {
        let dur = link.duration(bytes);
        let start = self.offchip_ready.max(self.barrier).max(available_at);
        let finish = start + dur;
        self.offchip_ready = finish;
        let joules = link.energy(bytes);
        self.ledger.offchip += joules;
        self.trace(
            TID_OFFCHIP,
            start,
            finish,
            Payload::Link { bytes, energy_j: joules, flow, inbound },
        );
        if pim_metrics::enabled() {
            let metrics = self.metrics();
            metrics.energy[4].add(joules); // "offchip"
            metrics.link_bytes.add(bytes);
            metrics.link_messages.inc();
            metrics.link_busy_seconds.add(dur);
            metrics.offchip_busy_seconds.add(dur);
        }
        dur
    }

    /// Advances the chip barrier so subsequent work (including
    /// [`Self::link_transfer`]) starts no earlier than `at`. The cluster
    /// runtime uses this to align all chips on a stage boundary before a
    /// halo exchange.
    pub fn advance_barrier(&mut self, at: f64) {
        if pim_metrics::enabled() {
            // How long this chip's compute lane waits at the cluster stage
            // barrier for the stragglers (0 if this chip is the straggler).
            let stall = (at - self.elapsed).max(0.0);
            if stall > 0.0 {
                self.metrics().barrier_stall_seconds.add(stall);
            }
        }
        self.barrier = self.barrier.max(at);
    }

    /// Charges host preprocessing work (sqrt/inverse for the LUTs). The
    /// span is anchored at the current host-lane time, so a mid-run call
    /// queues after the host work already booked instead of double-booking
    /// t = 0 and overlapping prior spans.
    pub fn charge_host_preprocess(&mut self, sqrts: u64, divs: u64) {
        let (seconds, joules) = self.host.preprocess(sqrts, divs);
        self.ledger.host += joules;
        if pim_metrics::enabled() {
            self.metrics().energy[5].add(joules); // "host"
        }
        let t0 = self.host_ready;
        let t1 = t0 + seconds;
        self.host_ready = t1;
        self.elapsed = self.elapsed.max(t1);
        self.trace(
            TID_HOST,
            t0,
            t1,
            Payload::HostCall { call: "preprocess", count: sqrts + divs, energy_j: joules },
        );
    }

    /// Charges a host-lane window that *gates* subsequent chip work: the
    /// per-stage sqrt/inverse preprocess plus the constants-refresh DMA
    /// when transcendental math is host-placed. The span anchors at
    /// `max(at, host-lane time)` — `at` being the stage barrier the
    /// caller aligned on — and the returned `(t0, t1)` lets the caller
    /// [`Self::advance_barrier`] to `t1` so the stage kernels wait for
    /// the refreshed constants (the synchronous "CPU Host: sqrt /
    /// inverse" lane of Fig. 13). Unlike
    /// [`Self::charge_host_preprocess`], the caller prices the window
    /// (it knows the refresh traffic); `ops` is the call count for the
    /// trace payload.
    pub fn charge_host_math(&mut self, at: f64, seconds: f64, joules: f64, ops: u64) -> (f64, f64) {
        self.ledger.host += joules;
        if pim_metrics::enabled() {
            self.metrics().energy[5].add(joules); // "host"
        }
        let t0 = self.host_ready.max(at);
        let t1 = t0 + seconds;
        self.host_ready = t1;
        self.elapsed = self.elapsed.max(t1);
        self.trace(
            TID_HOST,
            t0,
            t1,
            Payload::HostCall { call: "math", count: ops, energy_j: joules },
        );
        (t0, t1)
    }

    /// Finalizes the run: applies process-node scaling and charges static
    /// power for the (scaled) elapsed time. Off-chip work still in flight
    /// is fenced into the total implicitly — a run can never report less
    /// wall-clock than its own data movement.
    pub fn finish(&self) -> ExecReport {
        let seconds = self.elapsed.max(self.offchip_ready) / self.config.node.perf_scale();
        let mut ledger = self.ledger.scaled(1.0 / self.config.node.energy_scale());
        ledger.charge_static(self.config.capacity.static_power(self.config.interconnect), seconds);
        ExecReport { seconds, ledger }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::AluOp;

    fn chip() -> PimChip {
        PimChip::new(ChipConfig::default_2gb())
    }

    /// Serializes the tests that enable + drain the global trace registry
    /// (drain collects every thread's ring, so two concurrent drainers
    /// would steal each other's spans).
    fn trace_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn arith(block: u32, op: AluOp, rows: u16) -> Instr {
        Instr::Arith {
            block: BlockId(block),
            op,
            first_row: 0,
            last_row: rows - 1,
            dst: 2,
            a: 0,
            b: 1,
        }
    }

    #[test]
    fn arith_on_distinct_blocks_overlaps() {
        let mut c = chip();
        let mut s = InstrStream::new();
        s.push(arith(0, AluOp::Mul, 512));
        s.push(arith(1, AluOp::Mul, 512));
        c.execute(&s);
        let overlapped = c.elapsed();

        let mut c2 = chip();
        let mut s2 = InstrStream::new();
        s2.push(arith(0, AluOp::Mul, 512));
        s2.push(arith(0, AluOp::Mul, 512));
        c2.execute(&s2);
        let serialized = c2.elapsed();
        assert!(
            overlapped < serialized * 0.6,
            "distinct blocks must overlap: {overlapped} vs {serialized}"
        );
    }

    #[test]
    fn fused_block_runs_are_bit_identical_to_the_one_at_a_time_path() {
        // The batched fast path fuses runs of same-block instructions;
        // every observable — cell contents, ledger joules, busy/ready
        // clocks, elapsed — must come out bit-identical to driving
        // `execute_one` per instruction.
        let instrs = [
            Instr::Read { block: BlockId(0), row: 3, offset: 0, words: 4 },
            Instr::Broadcast {
                block: BlockId(0),
                dst_first: 0,
                dst_last: 511,
                offset: 28,
                words: 2,
            },
            arith(0, AluOp::Mul, 512),
            arith(0, AluOp::Mac, 512),
            Instr::Write { block: BlockId(0), row: 700, offset: 5, words: 3 },
            arith(1, AluOp::Add, 16), // splits the run: different block
            arith(1, AluOp::Neg, 16),
            arith(0, AluOp::Sub, 100),
        ];
        let preload = |c: &mut PimChip| {
            for row in 0..512 {
                c.block_mut(BlockId(0)).set(row, 0, row as f64 * 0.25 - 17.0);
                c.block_mut(BlockId(0)).set(row, 1, 1.0 / (row as f64 + 1.0));
            }
        };
        let mut fused = chip();
        preload(&mut fused);
        let mut s = InstrStream::new();
        for i in &instrs {
            s.push(*i);
        }
        fused.execute(&s);

        let mut single = chip();
        preload(&mut single);
        for i in &instrs {
            single.execute_one(i);
        }
        // Replicate execute()'s dispatch epilogue so the two chips saw
        // the same total work.
        let dispatch = single.host.dispatch_time(instrs.len() as u64);
        single.ledger.host += dispatch * single.host.power();
        single.elapsed = single.elapsed.max(dispatch);
        single.host_ready = single.host_ready.max(dispatch);

        assert_eq!(fused.elapsed.to_bits(), single.elapsed.to_bits(), "elapsed");
        for (name, f, s) in [
            ("compute", fused.ledger.compute, single.ledger.compute),
            ("reads", fused.ledger.reads, single.ledger.reads),
            ("writes", fused.ledger.writes, single.ledger.writes),
            ("host", fused.ledger.host, single.ledger.host),
        ] {
            assert_eq!(f.to_bits(), s.to_bits(), "ledger.{name}");
        }
        for id in [0u32, 1] {
            let i = id as usize;
            assert_eq!(fused.block_ready[i].to_bits(), single.block_ready[i].to_bits());
            assert_eq!(fused.block_busy[i].to_bits(), single.block_busy[i].to_bits());
            for row in 0..BLOCK_ROWS {
                for col in 0..WORDS_PER_ROW {
                    let (f, s) = (
                        fused.block(BlockId(id)).get(row, col),
                        single.block(BlockId(id)).get(row, col),
                    );
                    assert_eq!(f.to_bits(), s.to_bits(), "block {id} ({row},{col})");
                }
            }
        }
        assert_eq!(fused.touched_blocks, single.touched_blocks);
    }

    #[test]
    fn sync_is_a_barrier() {
        let mut c = chip();
        let mut s = InstrStream::new();
        s.push(arith(0, AluOp::Mul, 1));
        s.push(Instr::Sync);
        s.push(arith(1, AluOp::Add, 1));
        c.execute(&s);
        let with_sync = c.elapsed();
        let mul = params::nor_seconds(params::FP32_MUL_CYCLES);
        let add = params::nor_seconds(params::FP32_ADD_CYCLES);
        assert!((with_sync - (mul + add)).abs() < 1e-12);
    }

    #[test]
    fn functional_read_copy_write_moves_data_between_blocks() {
        let mut c = chip();
        c.block_mut(BlockId(0)).set(7, 3, 42.5);
        let mut s = InstrStream::new();
        s.push(Instr::Read { block: BlockId(0), row: 7, offset: 3, words: 1 });
        s.push(Instr::Copy { src: BlockId(0), dst: BlockId(5), words: 1 });
        s.push(Instr::Write { block: BlockId(5), row: 9, offset: 0, words: 1 });
        c.execute(&s);
        assert_eq!(c.block(BlockId(5)).get(9, 0), 42.5);
        assert!(c.finish().ledger.interconnect > 0.0);
    }

    #[test]
    fn lut_instruction_executes_algorithm_1() {
        let mut c = chip();
        // LUT block 2 holds sqrt values; index 9 → 3.0.
        c.block_mut(BlockId(2)).set(0, 9, 3.0);
        // Row 100 of block 0 holds the index 9 at column 4.
        c.block_mut(BlockId(0)).set(100, 4, 9.0);
        let mut s = InstrStream::new();
        s.push(Instr::Lut { row: 100, offset_s: 4, lut_block: 2, offset_d: 11 });
        c.execute(&s);
        assert_eq!(c.block(BlockId(0)).get(100, 11), 3.0);
    }

    #[test]
    fn out_of_range_lut_index_surfaces_as_a_diagnostic_not_a_crash() {
        let mut c = chip();
        // The index word holds 40000.0 — past the 32K entries one block
        // serves. The instruction must skip (destination untouched) and
        // leave a diagnostic instead of panicking.
        c.block_mut(BlockId(0)).set(100, 4, 40000.0);
        c.block_mut(BlockId(0)).set(100, 11, -1.0);
        let _guard = trace_test_lock();
        pim_trace::enable();
        let mut s = InstrStream::new();
        s.push(Instr::Lut { row: 100, offset_s: 4, lut_block: 2, offset_d: 11 });
        c.execute(&s);
        pim_trace::disable();
        assert_eq!(c.block(BlockId(0)).get(100, 11), -1.0, "write-back must be skipped");
        assert_eq!(c.diagnostics().len(), 1);
        assert!(c.diagnostics()[0].contains("exceeds one block"), "{:?}", c.diagnostics());
        let drained = c.take_diagnostics();
        assert_eq!(drained.len(), 1);
        assert!(c.diagnostics().is_empty());
        // The skip path's timeline matches the normal path's shape: both
        // reserved blocks are released at the failure point, so the LUT
        // block shows busy time too (the old interpreter folded its
        // ready-time into `start` and then never advanced it).
        assert!(c.block_utilization(BlockId(0)) > 0.0);
        assert!(c.block_utilization(BlockId(2)) > 0.0, "lut block timeline left untouched");
        // The index read that physically happened is traced even though
        // the instruction was skipped.
        let pid = c.trace_pid();
        let (events, _) = pim_trace::drain();
        assert!(
            events.iter().any(|e| e.pid == pid
                && e.tid == 0
                && matches!(e.payload, Payload::BlockOp { op: "read", .. })),
            "skip path must trace the index read"
        );
        // The index read that physically happened stays charged.
        assert!(c.finish().ledger.reads > 0.0);
    }

    #[test]
    fn negative_lut_index_is_a_diagnostic_not_an_entry_zero_fetch() {
        // Regression: `index.round() as usize` saturates a negative index
        // word to 0, so the old interpreter silently fetched LUT entry 0
        // instead of diagnosing the malformed program.
        let mut c = chip();
        c.block_mut(BlockId(2)).set(0, 0, 99.0); // entry 0 sentinel
        c.block_mut(BlockId(0)).set(100, 4, -3.0); // negative index word
        c.block_mut(BlockId(0)).set(100, 11, -1.0);
        let mut s = InstrStream::new();
        s.push(Instr::Lut { row: 100, offset_s: 4, lut_block: 2, offset_d: 11 });
        c.execute(&s);
        assert_eq!(c.block(BlockId(0)).get(100, 11), -1.0, "negative index must not fetch entry 0");
        assert_eq!(c.diagnostics().len(), 1);
        assert!(c.diagnostics()[0].contains("not a valid table index"), "{:?}", c.diagnostics());
        assert!(c.diagnostics()[0].contains("-3"), "{:?}", c.diagnostics());
        // NaN index words take the same path.
        c.block_mut(BlockId(0)).set(100, 4, f64::NAN);
        c.execute(&s);
        assert_eq!(c.diagnostics().len(), 2);
        assert_eq!(c.block(BlockId(0)).get(100, 11), -1.0);
    }

    #[test]
    fn offchip_transfers_serialize_on_the_channel() {
        let mut c = chip();
        let mut s = InstrStream::new();
        s.push(Instr::LoadOffchip { block: BlockId(0), bytes: 1 << 20 });
        s.push(Instr::LoadOffchip { block: BlockId(1), bytes: 1 << 20 });
        c.execute(&s);
        let one = (1u64 << 20) as f64 / params::OFFCHIP_BANDWIDTH;
        // Dual-lane: the DMAs ride the off-chip lane and cost no compute
        // wall-clock until fenced.
        assert!(c.elapsed() < one, "unfenced DMAs must not advance elapsed");
        assert!((c.offchip_time() - 2.0 * one).abs() < 1e-12, "HBM2 channel must serialize");
        let two = c.fence_offchip();
        assert!((two - 2.0 * one).abs() < 1e-12, "fence joins the lane into elapsed");
        assert!(c.finish().ledger.offchip > 0.0);
    }

    #[test]
    fn link_transfers_serialize_on_the_offchip_port() {
        use crate::link::InterChipLink;
        let mut c = chip();
        let link = InterChipLink::default();
        let d1 = c.link_transfer(&link, 1 << 20);
        let d2 = c.link_transfer(&link, 1 << 20);
        assert!((d1 - d2).abs() < 1e-18);
        assert!((d1 - link.duration(1 << 20)).abs() < 1e-18);
        assert!((c.offchip_time() - 2.0 * d1).abs() < 1e-15, "link shares the off-chip channel");
        c.fence_offchip();
        assert!((c.elapsed() - 2.0 * d1).abs() < 1e-15);
        let expected = 2.0 * link.energy(1 << 20);
        assert!((c.finish().ledger.offchip - expected).abs() < 1e-15 * expected.max(1.0));
    }

    #[test]
    fn barrier_delays_link_transfers() {
        use crate::link::InterChipLink;
        let mut c = chip();
        c.advance_barrier(1.0e-3);
        let link = InterChipLink::default();
        c.link_transfer(&link, 1024);
        c.fence_offchip();
        assert!(c.elapsed() >= 1.0e-3 + link.duration(1024) - 1e-15);
    }

    #[test]
    fn dma_start_respects_the_stage_barrier() {
        // Regression: a ghost-load DMA issued after `advance_barrier`
        // must not start before the cluster stage barrier, exactly like
        // `link_transfer`.
        let mut c = chip();
        let barrier = 1.0e-3;
        c.advance_barrier(barrier);
        let mut s = InstrStream::new();
        s.push(Instr::LoadOffchip { block: BlockId(0), bytes: 1 << 20 });
        c.execute(&s);
        let dur = (1u64 << 20) as f64 / params::OFFCHIP_BANDWIDTH;
        assert!(
            c.offchip_time() >= barrier + dur - 1e-15,
            "DMA started before the barrier: lane frees at {} < {}",
            c.offchip_time(),
            barrier + dur
        );
    }

    #[test]
    fn offchip_lane_hides_behind_independent_compute() {
        // A DMA into block 0 and arithmetic on block 1 overlap: elapsed
        // covers only the compute until the fence.
        let mut c = chip();
        let mut s = InstrStream::new();
        s.push(Instr::LoadOffchip { block: BlockId(0), bytes: 1 << 24 });
        s.push(arith(1, AluOp::Mul, 512));
        c.execute(&s);
        let dma = (1u64 << 24) as f64 / params::OFFCHIP_BANDWIDTH;
        let mul = params::nor_seconds(params::FP32_MUL_CYCLES);
        assert!(dma > mul, "test premise: the DMA outlasts the compute");
        assert!((c.elapsed() - mul).abs() < 1e-15, "compute lane ignores the in-flight DMA");
        c.fence_offchip();
        assert!((c.elapsed() - dma).abs() < 1e-15, "fence exposes the DMA tail");
    }

    #[test]
    fn compute_on_the_dma_target_block_waits_for_the_data() {
        // The data dependency: arithmetic on the block a DMA fills must
        // start after the DMA finishes even without an explicit fence.
        let mut c = chip();
        let mut s = InstrStream::new();
        s.push(Instr::LoadOffchip { block: BlockId(0), bytes: 1 << 24 });
        s.push(arith(0, AluOp::Mul, 512));
        c.execute(&s);
        let dma = (1u64 << 24) as f64 / params::OFFCHIP_BANDWIDTH;
        let mul = params::nor_seconds(params::FP32_MUL_CYCLES);
        assert!((c.elapsed() - (dma + mul)).abs() < 1e-15, "dependent compute must serialize");
    }

    #[test]
    fn sync_never_lowers_an_advanced_barrier() {
        let mut c = chip();
        c.advance_barrier(1.0e-3);
        let mut s = InstrStream::new();
        s.push(Instr::Sync); // elapsed is still 0 here
        s.push(arith(0, AluOp::Mul, 1));
        c.execute(&s);
        let mul = params::nor_seconds(params::FP32_MUL_CYCLES);
        assert!(
            c.elapsed() >= 1.0e-3 + mul - 1e-15,
            "Sync reset the cluster barrier: {}",
            c.elapsed()
        );
    }

    #[test]
    fn mid_run_preprocess_anchors_on_the_host_lane() {
        let mut c = chip();
        let mut s = InstrStream::new();
        s.push(arith(0, AluOp::Mul, 512));
        c.execute(&s);

        let _guard = trace_test_lock();
        pim_trace::enable();
        c.charge_host_preprocess(100, 100);
        c.charge_host_preprocess(100, 100);
        pim_trace::disable();
        let (events, _) = pim_trace::drain();
        let pid = c.trace_pid();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| {
                e.pid == pid
                    && e.tid == TID_HOST
                    && matches!(e.payload, Payload::HostCall { call: "preprocess", .. })
            })
            .collect();
        assert_eq!(spans.len(), 2);
        let (per, _) = c.host().preprocess(100, 100);
        // The first call queues after the dispatch work already booked;
        // the second queues after the first — no double-booked t = 0.
        let dispatch = c.host().dispatch_time(1);
        assert!((spans[0].t0 - dispatch).abs() < 1e-18, "span 0 starts at {}", spans[0].t0);
        assert!((spans[0].t1 - (dispatch + per)).abs() < 1e-15);
        assert!(
            (spans[1].t0 - spans[0].t1).abs() < 1e-18,
            "mid-run preprocess must queue on the host lane, not restart at t=0"
        );
        assert!(c.elapsed() >= spans[1].t1 - 1e-15);
    }

    #[test]
    fn host_math_window_anchors_at_the_stage_barrier_and_gates_later_work() {
        let mut c = chip();
        // The window starts at the barrier even though the host lane is
        // idle before it.
        let (t0, t1) = c.charge_host_math(2.0e-3, 5.0e-4, 1.0e-6, 64);
        assert_eq!(t0, 2.0e-3);
        assert!((t1 - 2.5e-3).abs() < 1e-15);
        assert!(c.elapsed() >= t1);
        // Advancing the barrier to t1 makes subsequent block ops wait
        // for the refreshed constants.
        c.advance_barrier(t1);
        let mut s = InstrStream::new();
        s.push(arith(0, AluOp::Mul, 1));
        c.execute(&s);
        let mul = params::nor_seconds(params::FP32_MUL_CYCLES);
        assert!((c.elapsed() - (t1 + mul)).abs() < 1e-12);
        // A second window queues after the first on the host lane even
        // with an earlier anchor.
        let (u0, _) = c.charge_host_math(0.0, 1.0e-4, 0.0, 64);
        assert_eq!(u0, t1);
    }

    #[test]
    fn process_scaling_speeds_up_and_saves_energy() {
        let run = |node: ProcessNode| {
            let mut c = PimChip::new(ChipConfig {
                capacity: ChipCapacity::Gb2,
                interconnect: InterconnectKind::HTree,
                node,
            });
            let mut s = InstrStream::new();
            for _ in 0..10 {
                s.push(arith(0, AluOp::Mul, 512));
            }
            c.execute(&s);
            c.finish()
        };
        let r28 = run(ProcessNode::Nm28);
        let r12 = run(ProcessNode::Nm12);
        assert!((r28.seconds / r12.seconds - 3.81).abs() < 1e-9);
        assert!(r12.ledger.total() < r28.ledger.total());
    }

    #[test]
    fn bus_chip_burns_less_static_power_than_htree() {
        let run = |ic: InterconnectKind| {
            let mut c = PimChip::new(ChipConfig {
                capacity: ChipCapacity::Gb2,
                interconnect: ic,
                node: ProcessNode::Nm28,
            });
            let mut s = InstrStream::new();
            s.push(arith(0, AluOp::Mul, 512));
            c.execute(&s);
            c.finish()
        };
        let h = run(InterconnectKind::HTree);
        let b = run(InterconnectKind::Bus);
        assert!(b.ledger.static_energy < h.ledger.static_energy);
    }

    #[test]
    #[should_panic(expected = "exceeds the 512MB chip")]
    fn block_bounds_are_enforced() {
        let mut c = PimChip::new(ChipConfig {
            capacity: ChipCapacity::Mb512,
            interconnect: InterconnectKind::HTree,
            node: ProcessNode::Nm28,
        });
        let _ = c.block(BlockId(ChipCapacity::Mb512.num_blocks() as u32));
    }

    #[test]
    fn utilization_tracks_busy_blocks() {
        let mut c = chip();
        let mut s = InstrStream::new();
        // Block 0 works twice as long as block 1.
        s.push(arith(0, AluOp::Mul, 512));
        s.push(arith(0, AluOp::Mul, 512));
        s.push(arith(1, AluOp::Mul, 512));
        c.execute(&s);
        let u0 = c.block_utilization(BlockId(0));
        let u1 = c.block_utilization(BlockId(1));
        assert!((u0 - 1.0).abs() < 1e-9, "block 0 busy the whole time: {u0}");
        assert!((u1 - 0.5).abs() < 1e-9, "block 1 busy half the time: {u1}");
        assert_eq!(c.block_utilization(BlockId(99)), 0.0);
        let mean = c.mean_active_utilization();
        assert!((mean - 0.75).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn metrics_counters_mirror_the_ledger_exactly() {
        let mut c = chip();
        c.set_metrics_label("test-mirror");
        c.block_mut(BlockId(2)).set(0, 9, 3.0);
        c.block_mut(BlockId(0)).set(100, 4, 9.0);

        let s0 = pim_metrics::global().snapshot();
        pim_metrics::enable();
        let mut s = InstrStream::new();
        s.push(arith(0, AluOp::Mul, 512));
        s.push(arith(1, AluOp::Add, 16));
        s.push(Instr::Read { block: BlockId(0), row: 7, offset: 3, words: 1 });
        s.push(Instr::Copy { src: BlockId(0), dst: BlockId(5), words: 1 });
        s.push(Instr::Write { block: BlockId(5), row: 9, offset: 0, words: 1 });
        s.push(Instr::Broadcast {
            block: BlockId(1),
            dst_first: 0,
            dst_last: 3,
            offset: 0,
            words: 1,
        });
        s.push(Instr::Lut { row: 100, offset_s: 4, lut_block: 2, offset_d: 11 });
        s.push(Instr::LoadOffchip { block: BlockId(3), bytes: 4096 });
        s.push(Instr::Sync);
        c.execute(&s);
        c.link_transfer(&crate::link::InterChipLink::default(), 2048);
        c.charge_host_preprocess(10, 10);
        pim_metrics::disable();
        let delta = pim_metrics::global().snapshot().delta(&s0);

        // Energy counters mirror every ledger charge: per-mechanism and in
        // total (unscaled dynamic joules).
        let prefix = "pim_chip_energy_joules_total{chip=\"test-mirror\"";
        let metered: f64 = delta.float_total(prefix);
        let ledger = *c.ledger();
        let rel = (metered - ledger.dynamic()).abs() / ledger.dynamic();
        assert!(rel < 1e-12, "metrics {metered} vs ledger {} (rel {rel:.2e})", ledger.dynamic());
        for (mechanism, expected) in [
            ("compute", ledger.compute),
            ("reads", ledger.reads),
            ("writes", ledger.writes),
            ("interconnect", ledger.interconnect),
            ("offchip", ledger.offchip),
            ("host", ledger.host),
        ] {
            let key = format!(
                "pim_chip_energy_joules_total{{chip=\"test-mirror\",mechanism=\"{mechanism}\"}}"
            );
            let got = delta.float_counters.get(&key).copied().unwrap_or(0.0);
            assert!(
                (got - expected).abs() <= 1e-15 + 1e-12 * expected.abs(),
                "{mechanism}: metrics {got} vs ledger {expected}"
            );
        }

        // Opcode mix matches the stream stats; DMA bytes and link traffic
        // land in their counters.
        let op = |name: &str| {
            delta
                .counters
                .get(&format!("pim_chip_instrs_total{{chip=\"test-mirror\",op=\"{name}\"}}"))
                .copied()
                .unwrap_or(0)
        };
        assert_eq!(op("arith_mul"), 1);
        assert_eq!(op("arith_add"), 1);
        assert_eq!(op("read"), 1);
        assert_eq!(op("copy"), 1);
        assert_eq!(op("write"), 1);
        assert_eq!(op("broadcast"), 1);
        assert_eq!(op("lut"), 1);
        assert_eq!(op("load_offchip"), 1);
        assert_eq!(op("sync"), 1);
        assert_eq!(delta.counters["pim_chip_dma_bytes_total{chip=\"test-mirror\"}"], 4096);
        assert_eq!(delta.counters["pim_chip_link_bytes_total{chip=\"test-mirror\"}"], 2048);
        // 512 + 16 arith rows, 1 read, 1 write, 4 broadcast rows, 3 LUT.
        assert_eq!(
            delta.counters["pim_chip_row_activations_total{chip=\"test-mirror\"}"],
            512 + 16 + 1 + 1 + 4 + 3
        );
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        pim_metrics::disable();
        let s0 = pim_metrics::global().snapshot();
        let mut c = chip();
        c.set_metrics_label("test-disabled");
        let mut s = InstrStream::new();
        s.push(arith(0, AluOp::Mul, 64));
        c.execute(&s);
        let delta = pim_metrics::global().snapshot().delta(&s0);
        assert!(
            !delta.float_counters.keys().any(|k| k.contains("test-disabled")),
            "disabled run leaked metrics: {:?}",
            delta.float_counters
        );
    }

    #[test]
    fn host_dispatch_bounds_elapsed_time() {
        // A stream of cheap syncs is dispatch-bound.
        let mut c = chip();
        let mut s = InstrStream::new();
        for _ in 0..1000 {
            s.push(Instr::Sync);
        }
        c.execute(&s);
        assert!(c.elapsed() >= c.host().dispatch_time(1000));
    }

    #[test]
    fn fence_blocks_waits_only_for_the_named_blocks() {
        use crate::link::InterChipLink;
        let link = InterChipLink::default();
        // A ghost-landing DMA followed by a long outbound link charge:
        // the partial fence must join compute to the DMA'd block without
        // paying for the tail still draining on the lane.
        let build = || {
            let mut c = chip();
            let mut s = InstrStream::new();
            s.push(Instr::LoadOffchip { block: BlockId(3), bytes: 1 << 16 });
            c.execute(&s);
            c.link_transfer(&link, 1 << 22);
            c
        };
        let mut partial = build();
        let dma_done = partial.block_ready_time(BlockId(3));
        assert!(dma_done > 0.0);
        assert!(partial.offchip_time() > dma_done, "the link tail must extend past the DMA");
        assert_eq!(partial.blocks_ready_time(&[BlockId(3)]).to_bits(), dma_done.to_bits());
        assert_eq!(partial.blocks_ready_time(&[]), 0.0);

        let after_partial = partial.fence_blocks(&[BlockId(3)]);
        assert!(after_partial >= dma_done);
        assert!(
            after_partial < partial.offchip_time(),
            "a partial fence must not charge the outbound tail"
        );

        let mut full = build();
        let after_full = full.fence_offchip();
        assert!(after_partial <= after_full, "fence_blocks can never exceed fence_offchip");
    }

    #[test]
    fn link_transfer_from_floors_the_start_without_changing_the_cost() {
        use crate::link::InterChipLink;
        let link = InterChipLink::default();
        let mut plain = chip();
        let d = plain.link_transfer(&link, 4096);
        let mut zero_floor = chip();
        let d0 = zero_floor.link_transfer_from(&link, 4096, 0.0);
        assert_eq!(d.to_bits(), d0.to_bits());
        assert_eq!(plain.offchip_time().to_bits(), zero_floor.offchip_time().to_bits());

        let mut floored = chip();
        let floor = 0.125;
        let df = floored.link_transfer_from(&link, 4096, floor);
        assert_eq!(df.to_bits(), d.to_bits(), "the floor shifts the span, not its duration");
        assert!((floored.offchip_time() - (floor + d)).abs() < 1e-15);
        assert!(floored.elapsed() < floor, "a floored transfer must not advance compute");
    }
}
