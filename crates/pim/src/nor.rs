//! MAGIC-style NOR netlists executed gate-by-gate.
//!
//! In the digital PIM, "arithmetic operations like addition and
//! multiplication are achieved by performing NOR operations sequentially"
//! inside memristor rows (§2.3). Each NOR gate is one memory cycle: the
//! output memristor is initialized to `R_ON` and switches to `R_OFF` when
//! any input is '1'. This module provides a faithful functional model of
//! that execution — every `nor()` call counts one cycle — and builds the
//! canonical in-memory arithmetic units on top of it:
//!
//! * the 9-gate NOR full adder,
//! * the N-bit ripple-carry adder (9N gates),
//! * the shift-add multiplier.
//!
//! These verify the gate-level *functionality* of the design and give
//! un-optimized upper bounds on cycle counts. The calibrated FP32
//! latencies in [`crate::params`] account for the column-level
//! optimizations (carry-save, operand reuse) of FloatPIM-class mappings.

/// Global NOR-activity counters: gate activations and scratch-pool
/// hit/miss rates, shared by every [`NorMachine`] in the process. Gate
/// counts are published as deltas at composite-op boundaries (not per
/// gate), so the enabled cost stays one counter update per arithmetic op.
struct NorMetrics {
    gates: pim_metrics::Counter,
    pool_hits: pim_metrics::Counter,
    pool_misses: pim_metrics::Counter,
}

fn nor_metrics() -> &'static NorMetrics {
    static METRICS: std::sync::OnceLock<NorMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = pim_metrics::global();
        NorMetrics {
            gates: reg.counter("pim_nor_gates_total", &[]),
            pool_hits: reg.counter("pim_nor_pool_hits_total", &[]),
            pool_misses: reg.counter("pim_nor_pool_misses_total", &[]),
        }
    })
}

/// A sequential NOR execution context that counts gates (= cycles).
#[derive(Debug, Default)]
pub struct NorMachine {
    gates: u64,
    /// Gate count already published to the metrics layer; the next
    /// publish emits only the delta, so nested composite ops (multiply
    /// calls ripple_add) never double-count.
    gates_published: u64,
    /// Retired bit buffers, reused by the arithmetic units below instead
    /// of allocating a fresh vector per operation — these run hot under
    /// the executor, and the gate counts are pure arithmetic, so buffer
    /// recycling cannot change any result.
    pool: Vec<Vec<bool>>,
}

impl NorMachine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Gates executed so far — in MAGIC, also the cycle count.
    pub fn gate_count(&self) -> u64 {
        self.gates
    }

    /// A cleared bit buffer from the pool (or a fresh one on first use).
    fn take_buf(&mut self) -> Vec<bool> {
        let mut buf = match self.pool.pop() {
            Some(buf) => {
                if pim_metrics::enabled() {
                    nor_metrics().pool_hits.inc();
                }
                buf
            }
            None => {
                if pim_metrics::enabled() {
                    nor_metrics().pool_misses.inc();
                }
                Vec::new()
            }
        };
        buf.clear();
        buf
    }

    /// Publishes the gate activations since the last publish. Called at
    /// composite-op boundaries; the watermark makes nesting safe.
    fn publish_gates(&mut self) {
        if pim_metrics::enabled() && self.gates > self.gates_published {
            nor_metrics().gates.add(self.gates - self.gates_published);
            self.gates_published = self.gates;
        }
    }

    /// Returns a retired bit buffer (e.g. a consumed `ripple_add` sum)
    /// to the pool for reuse by later operations.
    pub fn recycle(&mut self, buf: Vec<bool>) {
        self.pool.push(buf);
    }

    /// Buffers currently parked in the reuse pool.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// The primitive: one NOR gate, one cycle.
    #[inline]
    pub fn nor(&mut self, a: bool, b: bool) -> bool {
        self.gates += 1;
        !(a || b)
    }

    /// NOT via NOR(a, a).
    #[inline]
    pub fn not(&mut self, a: bool) -> bool {
        self.nor(a, a)
    }

    /// OR via NOT(NOR(a, b)).
    #[inline]
    pub fn or(&mut self, a: bool, b: bool) -> bool {
        let n = self.nor(a, b);
        self.not(n)
    }

    /// AND via NOR(NOT a, NOT b).
    #[inline]
    pub fn and(&mut self, a: bool, b: bool) -> bool {
        let na = self.not(a);
        let nb = self.not(b);
        self.nor(na, nb)
    }

    /// The canonical 9-gate NOR-only full adder.
    /// Returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: bool, b: bool, c: bool) -> (bool, bool) {
        let g1 = self.nor(a, b);
        let g2 = self.nor(a, g1);
        let g3 = self.nor(b, g1);
        let g4 = self.nor(g2, g3); // XNOR(a, b)
        let g5 = self.nor(g4, c);
        let g6 = self.nor(g4, g5);
        let g7 = self.nor(c, g5);
        let sum = self.nor(g6, g7);
        let carry = self.nor(g5, g1);
        (sum, carry)
    }

    /// N-bit ripple-carry addition, little-endian bit slices.
    /// Returns `(sum_bits, carry_out)`; uses exactly `9·N` gates.
    pub fn ripple_add(&mut self, a: &[bool], b: &[bool]) -> (Vec<bool>, bool) {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        let mut sum = self.take_buf();
        let mut carry = false;
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        self.publish_gates();
        (sum, carry)
    }

    /// Unsigned shift-add multiplication of two N-bit values into a
    /// 2N-bit product.
    pub fn multiply(&mut self, a: &[bool], b: &[bool]) -> Vec<bool> {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        let n = a.len();
        let mut acc = self.take_buf();
        acc.resize(2 * n, false);
        let mut partial = self.take_buf();
        for (shift, &bit) in b.iter().enumerate() {
            // Partial product: a AND b[shift], aligned at `shift`.
            partial.clear();
            partial.resize(2 * n, false);
            for (i, &abit) in a.iter().enumerate() {
                partial[shift + i] = self.and(abit, bit);
            }
            let (sum, _) = self.ripple_add(&acc, &partial);
            self.recycle(acc);
            acc = sum;
        }
        self.recycle(partial);
        self.publish_gates();
        acc
    }
}

impl NorMachine {
    /// Two's-complement subtraction `a − b` via invert-and-add with a
    /// carry-in of 1. Returns `(diff_bits, borrow)` where `borrow` is
    /// true when `a < b` (unsigned).
    pub fn subtract(&mut self, a: &[bool], b: &[bool]) -> (Vec<bool>, bool) {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        let mut diff = self.take_buf();
        let mut carry = true; // +1 of the two's complement
        for (&x, &y) in a.iter().zip(b) {
            let ny = self.not(y);
            let (s, c) = self.full_adder(x, ny, carry);
            diff.push(s);
            carry = c;
        }
        self.publish_gates();
        (diff, !carry)
    }

    /// Unsigned comparison `a < b`, built on the subtractor's borrow.
    pub fn less_than(&mut self, a: &[bool], b: &[bool]) -> bool {
        let (diff, borrow) = self.subtract(a, b);
        self.recycle(diff);
        borrow
    }
}

/// Cycle-count *bracket* for a bit-serial FP32 multiplication, derived
/// from the netlists above.
///
/// * upper bound — the naive shift-add multiplier of [`NorMachine::multiply`]
///   on the 24-bit mantissa (n partial products × (3n AND + 18n adder
///   gates)) plus exponent add and normalization;
/// * lower bound — a carry-save array (FloatPIM-class mapping): ~2 NOR
///   steps per partial-product bit plus one final carry propagation,
///   exponent add and normalize/round.
///
/// The calibrated `FP32_MUL_CYCLES` must land inside this bracket — the
/// calibration is a fit to the paper's throughput figure, not a free
/// parameter.
pub fn fp32_mul_cycle_bracket() -> (u64, u64) {
    let n: u64 = 24; // mantissa bits
    let exponent = 9 * 8; // 8-bit exponent ripple add
    let normalize = 3 * n; // shift + sticky collection
    let naive = n * (3 * n + 9 * 2 * n) + exponent + normalize;
    let carry_save = n * n * 2 + 9 * 2 * n + exponent + normalize;
    (carry_save, naive)
}

/// Cycle-count bracket for a bit-serial FP32 addition: exponent
/// difference (subtract), mantissa alignment shift, one mantissa add,
/// renormalization. The shift is the variable part: a bit-serial barrel
/// shift costs ~3 NOR per mantissa bit per shift stage (5 stages for
/// shifts up to 24), the naive serial shifter up to 24 single-bit passes.
pub fn fp32_add_cycle_bracket() -> (u64, u64) {
    let n: u64 = 24;
    let exp_diff = 9 * 8;
    let mantissa_add = 9 * (n + 1);
    let renorm = 3 * n;
    let barrel = 3 * n * 5;
    let serial = 3 * n * 24;
    (exp_diff + barrel + mantissa_add + renorm, exp_diff + serial + mantissa_add + renorm)
}

/// Converts a u64 into `n` little-endian bits.
pub fn to_bits(value: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (value >> i) & 1 == 1).collect()
}

/// Converts little-endian bits back to a u64 (must fit).
pub fn from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64);
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_gates_truth_tables() {
        let mut m = NorMachine::new();
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(m.nor(a, b), !(a || b));
                assert_eq!(m.and(a, b), a && b);
                assert_eq!(m.or(a, b), a || b);
            }
            assert_eq!(m.not(a), !a);
        }
    }

    #[test]
    fn full_adder_exhaustive_and_nine_gates() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let mut m = NorMachine::new();
                    let (s, cy) = m.full_adder(a, b, c);
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(s, total & 1 == 1, "sum for {a}{b}{c}");
                    assert_eq!(cy, total >= 2, "carry for {a}{b}{c}");
                    assert_eq!(m.gate_count(), 9, "the NOR full adder is 9 gates");
                }
            }
        }
    }

    #[test]
    fn ripple_adder_matches_u32_and_costs_9n() {
        let cases = [(0u32, 0u32), (1, 1), (0xFFFF_FFFF, 1), (12345, 67890), (1 << 31, 1 << 31)];
        for (a, b) in cases {
            let mut m = NorMachine::new();
            let (sum, carry) = m.ripple_add(&to_bits(a as u64, 32), &to_bits(b as u64, 32));
            let expected = a as u64 + b as u64;
            assert_eq!(from_bits(&sum), expected & 0xFFFF_FFFF);
            assert_eq!(carry, expected >> 32 == 1);
            assert_eq!(m.gate_count(), 9 * 32);
        }
    }

    #[test]
    fn multiplier_matches_u16() {
        let cases = [(0u16, 0u16), (1, 1), (255, 255), (65535, 65535), (300, 7), (4096, 16)];
        for (a, b) in cases {
            let mut m = NorMachine::new();
            let product = m.multiply(&to_bits(a as u64, 16), &to_bits(b as u64, 16));
            assert_eq!(from_bits(&product), a as u64 * b as u64, "{a}×{b}");
        }
    }

    #[test]
    fn multiplier_gate_count_grows_quadratically() {
        let count = |n: usize| {
            let mut m = NorMachine::new();
            let _ = m.multiply(&to_bits(0, n), &to_bits(0, n));
            m.gate_count()
        };
        let c8 = count(8);
        let c16 = count(16);
        // Shift-add: n partial products × (3n AND gates + 9·2n adder
        // gates) → ~4× when doubling n.
        let ratio = c16 as f64 / c8 as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn calibrated_fp_cycles_are_below_naive_netlists() {
        // The naive 24-bit mantissa multiplier alone exceeds the
        // calibrated FP32_MUL budget — documenting that the calibration
        // assumes column-parallel optimizations, not magic.
        let mut m = NorMachine::new();
        let _ = m.multiply(&to_bits(0xAAAAAA, 24), &to_bits(0x555555, 24));
        assert!(m.gate_count() > crate::params::FP32_MUL_CYCLES);
        // …and a 32-bit ripple add is well under the FP32 add budget
        // (which also pays for alignment and normalization).
        let mut m2 = NorMachine::new();
        let _ = m2.ripple_add(&to_bits(1, 32), &to_bits(2, 32));
        assert!(m2.gate_count() < crate::params::FP32_ADD_CYCLES);
    }

    #[test]
    fn subtractor_matches_u32() {
        let cases = [(10u32, 3u32), (3, 10), (0, 0), (u32::MAX, 1), (1, u32::MAX), (12345, 12345)];
        for (a, b) in cases {
            let mut m = NorMachine::new();
            let (diff, borrow) = m.subtract(&to_bits(a as u64, 32), &to_bits(b as u64, 32));
            assert_eq!(from_bits(&diff), a.wrapping_sub(b) as u64, "{a}-{b}");
            assert_eq!(borrow, a < b, "borrow for {a}-{b}");
        }
    }

    #[test]
    fn comparator_is_a_strict_order() {
        let values = [0u32, 1, 7, 100, 65535, u32::MAX];
        for &a in &values {
            for &b in &values {
                let mut m = NorMachine::new();
                assert_eq!(
                    m.less_than(&to_bits(a as u64, 32), &to_bits(b as u64, 32)),
                    a < b,
                    "{a} < {b}"
                );
            }
        }
    }

    #[test]
    fn calibrated_fp32_cycles_lie_in_the_derived_brackets() {
        // The throughput-calibrated constants must be *achievable*: above
        // the carry-save lower bound and below the naive netlist.
        let (mul_lo, mul_hi) = fp32_mul_cycle_bracket();
        assert!(
            (mul_lo..=mul_hi).contains(&crate::params::FP32_MUL_CYCLES),
            "FP32 mul {} outside [{mul_lo}, {mul_hi}]",
            crate::params::FP32_MUL_CYCLES
        );
        let (add_lo, add_hi) = fp32_add_cycle_bracket();
        assert!(
            (add_lo..=add_hi).contains(&crate::params::FP32_ADD_CYCLES),
            "FP32 add {} outside [{add_lo}, {add_hi}]",
            crate::params::FP32_ADD_CYCLES
        );
    }

    #[test]
    fn metrics_count_gates_and_pool_traffic() {
        // Global counters are shared across concurrently running tests,
        // so the assertions are lower bounds on the observed deltas.
        let s0 = pim_metrics::global().snapshot();
        pim_metrics::enable();
        let mut m = NorMachine::new();
        let a = to_bits(13, 8);
        let b = to_bits(9, 8);
        let (sum, _) = m.ripple_add(&a, &b); // take_buf misses the empty pool
        m.recycle(sum);
        let (diff, _) = m.subtract(&a, &b); // take_buf hits the recycled buffer
        m.recycle(diff);
        pim_metrics::disable();
        let delta = pim_metrics::global().snapshot().delta(&s0);
        let gates = delta.counters.get("pim_nor_gates_total").copied().unwrap_or(0);
        assert!(gates >= m.gate_count(), "published {gates} < executed {}", m.gate_count());
        assert!(delta.counters.get("pim_nor_pool_misses_total").copied().unwrap_or(0) >= 1);
        assert!(delta.counters.get("pim_nor_pool_hits_total").copied().unwrap_or(0) >= 1);
    }

    #[test]
    fn buffer_pool_recycles_without_changing_results_or_counts() {
        // Two identical multiplies on one machine: the second reuses the
        // first's retired buffers, with identical product and gate cost.
        let mut m = NorMachine::new();
        let a = to_bits(0xBEEF, 16);
        let b = to_bits(0x1234, 16);
        let p1 = m.multiply(&a, &b);
        let gates_first = m.gate_count();
        assert!(m.pooled_buffers() > 0, "multiply must retire buffers into the pool");
        let before = m.pooled_buffers();
        let p2 = m.multiply(&a, &b);
        assert_eq!(p1, p2);
        assert_eq!(m.gate_count(), 2 * gates_first, "recycling must not change gate counts");
        m.recycle(p1);
        m.recycle(p2);
        assert!(m.pooled_buffers() >= before, "retired results must return to the pool");
        // And the recycled buffers feed adds/subs too.
        let (sum, _) = m.ripple_add(&to_bits(7, 32), &to_bits(9, 32));
        assert_eq!(from_bits(&sum), 16);
        let (diff, borrow) = m.subtract(&to_bits(9, 32), &to_bits(7, 32));
        assert_eq!(from_bits(&diff), 2);
        assert!(!borrow);
    }

    #[test]
    fn bit_conversions_round_trip() {
        for v in [0u64, 1, 255, 0xDEAD_BEEF, u32::MAX as u64] {
            assert_eq!(from_bits(&to_bits(v, 40)), v);
        }
    }
}
