//! Property-based tests of the interconnect scheduler: the makespans the
//! evaluation relies on must come from *feasible* schedules.

use pim_isa::BlockId;
use pim_sim::{BusNetwork, HTreeNetwork, Interconnect, Transfer};
use proptest::prelude::*;

fn arb_transfer() -> impl Strategy<Value = Transfer> {
    (0u32..512, 0u32..512, 1u32..64).prop_filter_map("distinct blocks", |(a, b, w)| {
        if a == b {
            None
        } else {
            Some(Transfer { src: BlockId(a), dst: BlockId(b), words: w })
        }
    })
}

/// Independent feasibility checker: reconstruct each transfer's busy
/// interval and assert no two transfers sharing a resource overlap.
fn check_no_conflicts<I: Interconnect>(net: &I, transfers: &[Transfer]) {
    let schedule = net.schedule(transfers);
    let intervals: Vec<(f64, f64, Vec<_>)> = transfers
        .iter()
        .zip(&schedule.finish_times)
        .map(|(t, &finish)| {
            let dur = net.duration(t);
            (finish - dur, finish, net.route(t.src, t.dst))
        })
        .collect();
    for i in 0..intervals.len() {
        for j in i + 1..intervals.len() {
            let (s1, f1, r1) = &intervals[i];
            let (s2, f2, r2) = &intervals[j];
            let shares = r1.iter().any(|r| r2.contains(r));
            if shares {
                let overlap = s1.max(*s2) < f1.min(*f2) - 1e-15;
                assert!(
                    !overlap,
                    "transfers {i} and {j} share a switch yet overlap: \
                     [{s1}, {f1}] vs [{s2}, {f2}]"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn htree_schedules_are_conflict_free(
        transfers in proptest::collection::vec(arb_transfer(), 1..40)
    ) {
        check_no_conflicts(&HTreeNetwork::new(), &transfers);
    }

    #[test]
    fn bus_schedules_are_conflict_free(
        transfers in proptest::collection::vec(arb_transfer(), 1..40)
    ) {
        check_no_conflicts(&BusNetwork::new(), &transfers);
    }

    #[test]
    fn bus_never_beats_htree_makespan(
        transfers in proptest::collection::vec(arb_transfer(), 1..40)
    ) {
        // The H-tree can always at least match the bus (it serializes in
        // the worst case, and every intra-tile bus transfer is a single
        // shared switch anyway).
        let h = HTreeNetwork::new().schedule(&transfers).makespan;
        let b = BusNetwork::new().schedule(&transfers).makespan;
        prop_assert!(h <= b * (1.0 + 1e-12), "H-tree {} vs bus {}", h, b);
    }

    #[test]
    fn makespan_is_monotone_in_workload(
        transfers in proptest::collection::vec(arb_transfer(), 2..30)
    ) {
        let net = HTreeNetwork::new();
        let all = net.schedule(&transfers).makespan;
        let fewer = net.schedule(&transfers[..transfers.len() - 1]).makespan;
        prop_assert!(fewer <= all * (1.0 + 1e-12));
    }

    #[test]
    fn energy_is_additive(
        a in proptest::collection::vec(arb_transfer(), 1..20),
        b in proptest::collection::vec(arb_transfer(), 1..20),
    ) {
        let net = HTreeNetwork::new();
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let ea = net.schedule(&a).energy;
        let eb = net.schedule(&b).energy;
        let eab = net.schedule(&both).energy;
        prop_assert!((eab - (ea + eb)).abs() < 1e-12 * eab.max(1e-30));
    }

    #[test]
    fn routes_never_repeat_a_switch(t in arb_transfer()) {
        let net = HTreeNetwork::new();
        let mut route = net.route(t.src, t.dst);
        let len = route.len();
        route.sort();
        route.dedup();
        prop_assert_eq!(route.len(), len, "a route must not visit a switch twice");
    }
}
