//! Fuzzing the chip executor: arbitrary *valid* instruction streams must
//! execute without panicking, with monotone time and finite non-negative
//! energy — the invariants the evaluation's cost accounting rests on.

use pim_isa::{AluOp, BlockId, Instr, InstrStream};
use pim_sim::{ChipConfig, PimChip};
use proptest::prelude::*;

const BLOCKS: u32 = 64;

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Mac),
        Just(AluOp::Neg),
        Just(AluOp::Mov),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0..BLOCKS, 0u16..1024, 0u8..31, 1u8..=1).prop_map(|(b, row, off, w)| Instr::Read {
            block: BlockId(b),
            row,
            offset: off,
            words: w
        }),
        (0..BLOCKS, 0u16..1024, 0u8..31, 1u8..=1).prop_map(|(b, row, off, w)| Instr::Write {
            block: BlockId(b),
            row,
            offset: off,
            words: w
        }),
        (0..BLOCKS, 0u16..512, 0u8..31).prop_map(|(b, last, off)| Instr::Broadcast {
            block: BlockId(b),
            dst_first: 0,
            dst_last: last,
            offset: off,
            words: 1
        }),
        (0..BLOCKS, 0..BLOCKS, 1u16..32).prop_map(|(a, b, w)| Instr::Copy {
            src: BlockId(a),
            dst: BlockId(b),
            words: w
        }),
        (0..BLOCKS, arb_alu(), 0u16..512, 0u8..32, 0u8..32, 0u8..32).prop_map(
            |(b, op, last, d, x, y)| Instr::Arith {
                block: BlockId(b),
                op,
                first_row: 0,
                last_row: last,
                dst: d,
                a: x,
                b: y
            }
        ),
        (0..BLOCKS, 1u32..4096)
            .prop_map(|(b, bytes)| Instr::LoadOffchip { block: BlockId(b), bytes }),
        (0..BLOCKS, 1u32..4096)
            .prop_map(|(b, bytes)| Instr::StoreOffchip { block: BlockId(b), bytes }),
        Just(Instr::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_streams_execute_cleanly(
        instrs in proptest::collection::vec(arb_instr(), 1..80)
    ) {
        let mut chip = PimChip::new(ChipConfig::default_2gb());
        let mut stream = InstrStream::new();
        for i in instrs {
            stream.push(i);
        }
        chip.execute(&stream);
        let report = chip.finish();
        prop_assert!(report.seconds.is_finite() && report.seconds >= 0.0);
        let l = &report.ledger;
        for (name, v) in [
            ("compute", l.compute),
            ("reads", l.reads),
            ("writes", l.writes),
            ("interconnect", l.interconnect),
            ("offchip", l.offchip),
            ("host", l.host),
            ("static", l.static_energy),
        ] {
            prop_assert!(v.is_finite() && v >= 0.0, "{} = {}", name, v);
        }
    }

    #[test]
    fn elapsed_time_is_monotone_under_appends(
        base in proptest::collection::vec(arb_instr(), 1..40),
        extra in arb_instr(),
    ) {
        let run = |instrs: &[Instr]| {
            let mut chip = PimChip::new(ChipConfig::default_2gb());
            let mut stream = InstrStream::new();
            for &i in instrs {
                stream.push(i);
            }
            chip.execute(&stream);
            chip.elapsed()
        };
        let mut longer = base.clone();
        longer.push(extra);
        prop_assert!(run(&base) <= run(&longer) + 1e-15);
    }

    #[test]
    fn execution_is_deterministic(
        instrs in proptest::collection::vec(arb_instr(), 1..60)
    ) {
        let run = || {
            let mut chip = PimChip::new(ChipConfig::default_2gb());
            let mut stream = InstrStream::new();
            for &i in &instrs {
                stream.push(i);
            }
            chip.execute(&stream);
            let r = chip.finish();
            (r.seconds, r.ledger.total())
        };
        prop_assert_eq!(run(), run());
    }
}
