//! # pim-lens — causal blame decomposition of cluster traces
//!
//! The cluster runtime emits a structured trace: per-chip kernel spans
//! on the compute lane, DMA and inter-chip link charges on the off-chip
//! lane, fence waits with causal flow ids on the fence lane, and ghost
//! arrival instants. This crate reconstructs the cross-chip dependency
//! DAG those events encode and walks its **critical path** backward
//! from the end of the run, charging every instant of the makespan to
//! exactly one blame category:
//!
//! | category             | meaning                                            |
//! |----------------------|----------------------------------------------------|
//! | `compute:<Kernel>`   | a leaf kernel (Volume, Flux, Integration, MathRefine) was the bottleneck |
//! | `host_preprocess`    | the host-side math gate held the stage open        |
//! | `link_serialization` | an inter-chip link charge occupied the off-chip lane on the critical chain |
//! | `dma`                | a store/load DMA occupied the off-chip lane on the critical chain |
//! | `inbound_ghost_wait` | the off-chip lane sat idle inside a fence window waiting for a *sender* to reach the stage (pipelined floor) |
//! | `fence_idle`         | no traced work anywhere covered the instant — a pure scheduling hole |
//!
//! The walk covers the window `[t_start, t_end]` contiguously, so the
//! per-category blame **sums to the measured makespan exactly** (the
//! interval bounds telescope); the `≤ 1e-9` acceptance bound is slack
//! for float accumulation only.
//!
//! The walk is cross-chip: when the current chip has no traced work at
//! the cursor the walk *hops* to the chip that does (the straggler the
//! barrier or fence was really waiting on), and an idle lane inside a
//! fence window hops to the sender chip named by the inbound link
//! charge's causal flow id. The hop sequence is returned as the
//! critical-path edge list.

use std::collections::BTreeMap;

use pim_trace::{Event, Kernel, Payload, TID_FENCE, TID_KERNELS, TID_OFFCHIP};

/// Comparisons of simulated times tolerate this much float fuzz
/// (seconds). Stage times are O(1e-6 .. 1e2); 1e-12 is far below any
/// real segment and far above f64 rounding on sums of that magnitude.
const EPS: f64 = 1e-12;

/// One classified interval of the critical path, most recent first in
/// [`Analysis::critical_path`]. `chip` indexes the `pids` slice handed
/// to [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub chip: usize,
    pub t0: f64,
    pub t1: f64,
    pub category: String,
}

/// Order statistics of the per-stage cross-chip skew (the spread of
/// `RkStage` span starts), from the same event set the blame walk uses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkewStats {
    pub count: usize,
    pub min: f64,
    pub mean: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
}

/// The result of [`analyze`]: the measured makespan, its exact blame
/// decomposition, the critical-path edge list that produced it, and the
/// per-stage skew distribution.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// `t_end - t_start`, the quantity the blame decomposes.
    pub makespan: f64,
    /// Blame seconds per category; values are nonnegative and sum to
    /// [`Self::makespan`] (see [`Self::blame_total`]).
    pub blame: BTreeMap<String, f64>,
    /// The walked critical path, latest interval first. Adjacent
    /// intervals on the same chip and category are merged.
    pub critical_path: Vec<Edge>,
    /// Cross-chip spread of each stage's entry, from `RkStage` spans.
    pub skew: SkewStats,
}

impl Analysis {
    /// Sum of all blame categories — equals the makespan by
    /// construction, modulo float accumulation.
    pub fn blame_total(&self) -> f64 {
        self.blame.values().sum()
    }

    /// One category's fraction of the makespan (0 when the window is
    /// empty or the category absent).
    pub fn share(&self, category: &str) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.blame.get(category).copied().unwrap_or(0.0) / self.makespan
    }

    /// Total blame across the `compute:*` categories.
    pub fn compute_share(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.blame.iter().filter(|(k, _)| k.starts_with("compute:")).map(|(_, v)| v).sum::<f64>()
            / self.makespan
    }

    /// The category carrying the most blame, ties broken by name.
    pub fn dominant(&self) -> Option<(&str, f64)> {
        self.blame
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
            .map(|(k, &v)| (k.as_str(), v))
    }
}

/// What a chip's compute timeline is doing over one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ComputeKind {
    /// A leaf kernel by name (`Volume`, `Flux`, `Integration`,
    /// `MathRefine`).
    Kernel(&'static str),
    /// The host-placed math gate at the stage entry.
    HostPreprocess,
    /// A fence wait — sub-classified against the chip's own off-chip
    /// lane during the walk.
    Fence,
}

/// One serialized charge on a chip's off-chip lane.
#[derive(Debug, Clone, Copy)]
struct LaneSeg {
    t0: f64,
    t1: f64,
    /// Causal id when this is a link charge (`0` for DMAs and untagged
    /// charges).
    flow: u64,
    /// True for receive-side link charges — the ones whose start can be
    /// floored by a remote sender.
    inbound_link: bool,
    /// True for any link charge (either endpoint).
    link: bool,
}

#[derive(Debug, Clone, Copy)]
struct ComputeSeg {
    t0: f64,
    t1: f64,
    kind: ComputeKind,
}

/// Per-chip view of the trace: the classified compute timeline and the
/// serialized off-chip lane, both sorted by start time.
#[derive(Debug, Default)]
struct ChipTimeline {
    compute: Vec<ComputeSeg>,
    lane: Vec<LaneSeg>,
}

impl ChipTimeline {
    /// The latest segment that starts strictly before `t`, as an index,
    /// from a slice sorted by `t0`.
    fn last_starting_before<T>(segs: &[T], t: f64, start: impl Fn(&T) -> f64) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = segs.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if start(&segs[mid]) < t - EPS {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.checked_sub(1)
    }

    /// The compute segment covering the instant just before `t`, if any.
    fn compute_at(&self, t: f64) -> Option<&ComputeSeg> {
        let i = Self::last_starting_before(&self.compute, t, |s| s.t0)?;
        let s = &self.compute[i];
        (s.t1 >= t - EPS).then_some(s)
    }

    /// The lane segment covering the instant just before `t`, if any,
    /// plus the index of the first lane segment at or after `t` (the
    /// charge whose floored start explains an idle gap ending at `t`).
    fn lane_at(&self, t: f64) -> (Option<&LaneSeg>, Option<&LaneSeg>) {
        match Self::last_starting_before(&self.lane, t, |s| s.t0) {
            Some(i) => {
                let s = &self.lane[i];
                if s.t1 >= t - EPS {
                    (Some(s), None)
                } else {
                    (None, self.lane.get(i + 1))
                }
            }
            None => (None, self.lane.first()),
        }
    }

    /// End time of the latest lane segment ending at or before `t`
    /// (lower bound for an idle-lane interval that ends at `t`).
    fn lane_ready_before(&self, t: f64) -> Option<f64> {
        let i = Self::last_starting_before(&self.lane, t, |s| s.t0)?;
        Some(self.lane[i].t1.min(t))
    }

    /// Does any traced segment (compute or lane) cover the instant just
    /// before `t`?
    fn busy_at(&self, t: f64) -> bool {
        self.compute_at(t).is_some() || self.lane_at(t).0.is_some()
    }

    /// The latest segment end strictly below `t` on either timeline —
    /// where a totally-idle interval ending at `t` must have begun.
    fn latest_end_before(&self, t: f64) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for s in &self.compute {
            if s.t1 < t - EPS && s.t1 > best {
                best = s.t1;
            }
            if s.t0 >= t {
                break;
            }
        }
        for s in &self.lane {
            if s.t1 < t - EPS && s.t1 > best {
                best = s.t1;
            }
            if s.t0 >= t {
                break;
            }
        }
        best
    }
}

/// One step of the backward walk.
enum Step {
    /// Charge `[from, cursor)` to `category`; optionally continue on
    /// another chip at `from`.
    Blame { category: String, from: f64, hop: Option<usize> },
    /// Nothing on this chip at the cursor — continue on another chip at
    /// the same time.
    Hop { chip: usize },
}

/// Reconstructs the causal DAG from `events` and decomposes the window
/// `[t_start, t_end]` of a cluster run into per-category blame.
///
/// `pids` are the cluster's chip trace pids in chip order (from
/// `ClusterRunner::trace_pids`); events on other pids are ignored.
/// `t_start`/`t_end` bound the analysis window — pass the cluster's
/// `elapsed()` immediately before and after the run, because chip
/// clocks include construction-time charges that are not part of the
/// stepped makespan.
///
/// Panics if `t_end < t_start` or the walk fails to make progress
/// (which would indicate a malformed trace).
pub fn analyze(events: &[Event], pids: &[u32], t_start: f64, t_end: f64) -> Analysis {
    assert!(t_end >= t_start - EPS, "analysis window is reversed: [{t_start}, {t_end}]");
    let makespan = (t_end - t_start).max(0.0);

    let chip_of = |pid: u32| pids.iter().position(|&p| p == pid);

    // Per-chip timelines plus the flow → sender-chip map from the
    // send-side link charges.
    let mut chips: Vec<ChipTimeline> = (0..pids.len()).map(|_| ChipTimeline::default()).collect();
    let mut flow_sender: BTreeMap<u64, usize> = BTreeMap::new();
    let mut stage_starts: Vec<Vec<f64>> = vec![Vec::new(); pids.len()];
    for e in events {
        let Some(c) = chip_of(e.pid) else { continue };
        match (e.tid, &e.payload) {
            (TID_KERNELS, Payload::Kernel { kernel, .. }) => {
                let kind = match kernel {
                    Kernel::Volume => Some(ComputeKind::Kernel("Volume")),
                    Kernel::Flux => Some(ComputeKind::Kernel("Flux")),
                    Kernel::Integration => Some(ComputeKind::Kernel("Integration")),
                    Kernel::MathRefine => Some(ComputeKind::Kernel("MathRefine")),
                    Kernel::HostPreprocess => Some(ComputeKind::HostPreprocess),
                    // Container spans (RkStage, Step, HaloExchange) and
                    // split-Flux phases the cluster never emits are not
                    // leaves of the compute timeline.
                    _ => None,
                };
                if *kernel == Kernel::RkStage {
                    stage_starts[c].push(e.t0);
                }
                if let Some(kind) = kind {
                    if e.t1 > e.t0 {
                        chips[c].compute.push(ComputeSeg { t0: e.t0, t1: e.t1, kind });
                    }
                }
            }
            (TID_FENCE, Payload::Fence { .. }) if e.t1 > e.t0 => {
                chips[c].compute.push(ComputeSeg { t0: e.t0, t1: e.t1, kind: ComputeKind::Fence });
            }
            (TID_OFFCHIP, Payload::Link { flow, inbound, .. }) => {
                if !inbound && *flow != 0 {
                    flow_sender.insert(*flow, c);
                }
                if e.t1 > e.t0 {
                    chips[c].lane.push(LaneSeg {
                        t0: e.t0,
                        t1: e.t1,
                        flow: *flow,
                        inbound_link: *inbound,
                        link: true,
                    });
                }
            }
            (TID_OFFCHIP, Payload::Offchip { .. }) if e.t1 > e.t0 => {
                chips[c].lane.push(LaneSeg {
                    t0: e.t0,
                    t1: e.t1,
                    flow: 0,
                    inbound_link: false,
                    link: false,
                });
            }
            _ => {}
        }
    }
    for tl in &mut chips {
        tl.compute.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        tl.lane.sort_by(|a, b| a.t0.total_cmp(&b.t0));
    }

    let skew = skew_stats(&stage_starts);

    let mut blame: BTreeMap<String, f64> = BTreeMap::new();
    let mut path: Vec<Edge> = Vec::new();
    if makespan <= 0.0 || pids.is_empty() {
        return Analysis { makespan, blame, critical_path: path, skew };
    }

    // Start on the chip whose traced work reaches latest into the
    // window — the one that set the makespan.
    let mut chip = (0..chips.len())
        .max_by(|&a, &b| {
            chips[a]
                .latest_end_before(f64::INFINITY)
                .total_cmp(&chips[b].latest_end_before(f64::INFINITY))
        })
        .unwrap_or(0);
    let mut t = t_end;
    // Progress is ≥ one segment boundary per two iterations (a Hop is
    // always followed by a Blame), so this bound is never reached on a
    // well-formed trace.
    let max_iters = 4 * events.len() + 1024;
    let mut iters = 0usize;
    while t > t_start + EPS {
        iters += 1;
        assert!(iters <= max_iters, "lens walk stalled at t={t} on chip {chip}");
        match step(&chips, chip, t, t_start, &flow_sender) {
            Step::Blame { category, from, hop } => {
                let from = from.max(t_start).min(t);
                let dt = t - from;
                if dt > 0.0 {
                    *blame.entry(category.clone()).or_insert(0.0) += dt;
                    match path.last_mut() {
                        Some(e)
                            if e.chip == chip
                                && e.category == category
                                && (e.t0 - t).abs() <= EPS =>
                        {
                            e.t0 = from;
                        }
                        _ => path.push(Edge { chip, t0: from, t1: t, category }),
                    }
                }
                t = from;
                if let Some(h) = hop {
                    chip = h;
                }
            }
            Step::Hop { chip: c } => chip = c,
        }
    }
    Analysis { makespan, blame, critical_path: path, skew }
}

/// Classifies the instant just before `t` on `chip`, returning the
/// maximal uniform interval ending at `t` and where the walk continues.
fn step(
    chips: &[ChipTimeline],
    chip: usize,
    t: f64,
    t_start: f64,
    flow_sender: &BTreeMap<u64, usize>,
) -> Step {
    let tl = &chips[chip];
    if let Some(seg) = tl.compute_at(t) {
        return match seg.kind {
            ComputeKind::Kernel(name) => {
                Step::Blame { category: format!("compute:{name}"), from: seg.t0, hop: None }
            }
            ComputeKind::HostPreprocess => {
                Step::Blame { category: "host_preprocess".into(), from: seg.t0, hop: None }
            }
            // A fence wait is blocked on this chip's own off-chip lane:
            // sub-classify by what the lane was doing just before `t`.
            ComputeKind::Fence => {
                let (busy, next) = tl.lane_at(t);
                match busy {
                    Some(l) => Step::Blame {
                        category: if l.link { "link_serialization" } else { "dma" }.into(),
                        from: seg.t0.max(l.t0),
                        hop: None,
                    },
                    None => {
                        // Idle lane inside a fence window: the next
                        // charge's start was floored by its sender's
                        // stage entry. Blame the idle on the inbound
                        // wait and continue on the sender — that chip's
                        // work is what the floor was really waiting on.
                        let from = seg.t0.max(tl.lane_ready_before(t).unwrap_or(seg.t0));
                        let hop = next
                            .filter(|l| l.inbound_link && l.flow != 0)
                            .and_then(|l| flow_sender.get(&l.flow).copied());
                        Step::Blame { category: "inbound_ghost_wait".into(), from, hop }
                    }
                }
            }
        };
    }
    // No compute span: an off-chip charge draining outside any fence
    // (e.g. the pipelined outbound tail) can still carry the makespan.
    if let (Some(l), _) = tl.lane_at(t) {
        return Step::Blame {
            category: if l.link { "link_serialization" } else { "dma" }.into(),
            from: l.t0,
            hop: None,
        };
    }
    // This chip is idle: the barrier/fence it sits at is held by some
    // other chip that *is* busy — hop to the straggler.
    if let Some(c) = (0..chips.len()).filter(|&c| c != chip).find(|&c| chips[c].busy_at(t)) {
        return Step::Hop { chip: c };
    }
    // Nobody is doing anything: a pure scheduling hole down to the
    // latest traced end anywhere (or the window start).
    let from = chips
        .iter()
        .map(|tl| tl.latest_end_before(t))
        .fold(f64::NEG_INFINITY, f64::max)
        .max(t_start);
    Step::Blame { category: "fence_idle".into(), from, hop: None }
}

/// Cross-chip spread of each stage entry: the k-th `RkStage` span start
/// on every chip, max minus min.
fn skew_stats(stage_starts: &[Vec<f64>]) -> SkewStats {
    let stages = stage_starts.iter().map(Vec::len).min().unwrap_or(0);
    if stages == 0 || stage_starts.len() < 2 {
        return SkewStats::default();
    }
    let mut spreads: Vec<f64> = (0..stages)
        .map(|k| {
            let starts = stage_starts.iter().map(|s| s[k]);
            let max = starts.clone().fold(f64::NEG_INFINITY, f64::max);
            let min = starts.fold(f64::INFINITY, f64::min);
            (max - min).max(0.0)
        })
        .collect();
    spreads.sort_by(f64::total_cmp);
    let quantile = |q: f64| {
        let idx = ((spreads.len() - 1) as f64 * q).round() as usize;
        spreads[idx]
    };
    SkewStats {
        count: spreads.len(),
        min: spreads[0],
        mean: spreads.iter().sum::<f64>() / spreads.len() as f64,
        max: spreads[spreads.len() - 1],
        p50: quantile(0.50),
        p95: quantile(0.95),
    }
}

/// The overlap budget of a traced cluster run: the busiest chip's
/// inter-chip link occupancy against the busiest chip's Volume window —
/// the same two quantities the analytic estimator compares to decide
/// whether the halo exchange is *exposed* ([`halo wall`]), except both
/// are **measured** from the trace instead of priced from a probe.
///
/// [`halo wall`]: https://en.wikipedia.org/wiki/Halo_exchange
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverlapBudget {
    /// Max over chips of the summed `Link` charge durations (the
    /// serialization time of the busiest port).
    pub link_seconds: f64,
    /// Max over chips of the summed `Volume` kernel span lengths (the
    /// window the exchange is scheduled to hide under).
    pub volume_seconds: f64,
}

impl OverlapBudget {
    /// `true` when the exchange no longer fits under the Volume window —
    /// the lens-side statement of the estimator's wall condition.
    pub fn link_exposed(&self) -> bool {
        self.link_seconds > self.volume_seconds + EPS
    }
}

/// Measures the [`OverlapBudget`] of `pids`' chips over the traced run.
/// Both maxima are taken independently (on a uniform partition they
/// coincide on the same chip; on a skewed one the comparison stays
/// conservative: the longest port against the longest window).
pub fn overlap_budget(events: &[Event], pids: &[u32]) -> OverlapBudget {
    let mut budget = OverlapBudget::default();
    for &pid in pids {
        let mut link = 0.0;
        let mut volume = 0.0;
        for e in events.iter().filter(|e| e.pid == pid) {
            match e.payload {
                Payload::Link { .. } => link += e.t1 - e.t0,
                Payload::Kernel { kernel: Kernel::Volume, .. } => volume += e.t1 - e.t0,
                _ => {}
            }
        }
        budget.link_seconds = budget.link_seconds.max(link);
        budget.volume_seconds = budget.volume_seconds.max(volume);
    }
    budget
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pid: u32, tid: u32, t0: f64, t1: f64, payload: Payload) -> Event {
        Event { pid, tid, t0, t1, seq: 0, payload }
    }

    fn kernel(pid: u32, t0: f64, t1: f64, k: Kernel) -> Event {
        ev(pid, TID_KERNELS, t0, t1, Payload::Kernel { kernel: k, stage: 0 })
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9
    }

    /// Single chip, compute only: all blame lands on the kernels.
    #[test]
    fn pure_compute_blames_kernels_exactly() {
        let events = vec![
            kernel(1, 0.0, 2.0, Kernel::Volume),
            kernel(1, 2.0, 5.0, Kernel::Flux),
            kernel(1, 5.0, 6.0, Kernel::Integration),
        ];
        let a = analyze(&events, &[1], 0.0, 6.0);
        assert!(close(a.blame_total(), a.makespan), "{a:?}");
        assert!(close(a.blame["compute:Volume"], 2.0));
        assert!(close(a.blame["compute:Flux"], 3.0));
        assert!(close(a.blame["compute:Integration"], 1.0));
        assert_eq!(a.dominant().unwrap().0, "compute:Flux");
    }

    /// A fence window fully covered by a link charge on the chip's own
    /// lane is link serialization, not ghost wait.
    #[test]
    fn fence_over_busy_lane_blames_link() {
        let events = vec![
            kernel(1, 0.0, 2.0, Kernel::Volume),
            ev(1, TID_FENCE, 2.0, 3.0, Payload::Fence { kind: "offchip", flow: 7 }),
            ev(
                1,
                TID_OFFCHIP,
                1.0,
                3.0,
                Payload::Link { bytes: 64, energy_j: 0.0, flow: 7, inbound: true },
            ),
            kernel(1, 3.0, 4.0, Kernel::Flux),
        ];
        let a = analyze(&events, &[1], 0.0, 4.0);
        assert!(close(a.blame_total(), 4.0), "{a:?}");
        assert!(close(a.blame["link_serialization"], 1.0), "{a:?}");
        assert!(!a.blame.contains_key("inbound_ghost_wait"));
    }

    /// An idle lane inside a fence window is inbound ghost wait, and
    /// the walk hops to the sender chip named by the flow id.
    #[test]
    fn idle_lane_in_fence_blames_sender() {
        let events = vec![
            // Chip 1 (the critical receiver): short Volume, then a
            // fence that waits idle until the inbound charge lands.
            kernel(1, 0.0, 1.0, Kernel::Volume),
            ev(1, TID_FENCE, 1.0, 5.0, Payload::Fence { kind: "blocks", flow: 9 }),
            ev(
                1,
                TID_OFFCHIP,
                4.0,
                5.0,
                Payload::Link { bytes: 64, energy_j: 0.0, flow: 9, inbound: true },
            ),
            kernel(1, 5.0, 6.0, Kernel::Flux),
            // Chip 2 (the sender): long Volume explains the floor, and
            // the send-side charge names it as the flow's origin.
            kernel(2, 0.0, 4.0, Kernel::Volume),
            ev(
                2,
                TID_OFFCHIP,
                4.0,
                5.0,
                Payload::Link { bytes: 64, energy_j: 0.0, flow: 9, inbound: false },
            ),
        ];
        let a = analyze(&events, &[1, 2], 0.0, 6.0);
        assert!(close(a.blame_total(), 6.0), "{a:?}");
        // [5,6) Flux + [4,5) link + [1,4) ghost wait (hop to chip 2
        // covers [0,1) with the sender's Volume after the wait segment
        // consumed down to chip 1's lane-ready floor, which is 0 here —
        // so the wait runs [1,4) and Volume [0,1) lands on chip 2).
        assert!(close(a.blame["inbound_ghost_wait"], 3.0), "{a:?}");
        assert!(close(a.blame["link_serialization"], 1.0), "{a:?}");
        let hop_edge = a.critical_path.iter().find(|e| e.category == "inbound_ghost_wait").unwrap();
        assert_eq!(hop_edge.chip, 0, "the wait is charged on the receiver");
        let tail = a.critical_path.last().unwrap();
        assert_eq!(tail.chip, 1, "the walk ends on the sender");
    }

    /// An idle chip at a barrier hops to the straggler that held it.
    #[test]
    fn barrier_idle_hops_to_straggler() {
        let events = vec![
            kernel(1, 0.0, 1.0, Kernel::Volume),
            kernel(1, 4.0, 5.0, Kernel::Flux),
            kernel(2, 0.0, 4.0, Kernel::Volume),
        ];
        let a = analyze(&events, &[1, 2], 0.0, 5.0);
        assert!(close(a.blame_total(), 5.0), "{a:?}");
        // [4,5) Flux on chip 1; [0,4) Volume via the straggler chip 2.
        assert!(close(a.blame["compute:Volume"], 4.0), "{a:?}");
        assert!(close(a.blame["compute:Flux"], 1.0), "{a:?}");
        assert!(!a.blame.contains_key("fence_idle"));
    }

    /// A hole nobody's trace covers falls back to fence_idle.
    #[test]
    fn uncovered_hole_is_fence_idle() {
        let events = vec![kernel(1, 0.0, 1.0, Kernel::Volume), kernel(1, 3.0, 4.0, Kernel::Flux)];
        let a = analyze(&events, &[1], 0.0, 4.0);
        assert!(close(a.blame_total(), 4.0), "{a:?}");
        assert!(close(a.blame["fence_idle"], 2.0), "{a:?}");
    }

    /// The window clips spans that straddle its bounds.
    #[test]
    fn window_clips_straddling_spans() {
        let events = vec![kernel(1, 0.0, 10.0, Kernel::Volume)];
        let a = analyze(&events, &[1], 2.0, 7.0);
        assert!(close(a.makespan, 5.0));
        assert!(close(a.blame["compute:Volume"], 5.0), "{a:?}");
    }

    /// Skew statistics come from the k-th RkStage start across chips.
    #[test]
    fn skew_from_rkstage_starts() {
        let events = vec![
            kernel(1, 0.0, 1.0, Kernel::RkStage),
            kernel(1, 1.0, 2.0, Kernel::RkStage),
            kernel(2, 0.5, 1.5, Kernel::RkStage),
            kernel(2, 1.25, 2.25, Kernel::RkStage),
        ];
        let a = analyze(&events, &[1, 2], 0.0, 2.25);
        assert_eq!(a.skew.count, 2);
        assert!(close(a.skew.max, 0.5), "{:?}", a.skew);
        assert!(close(a.skew.min, 0.25), "{:?}", a.skew);
    }

    /// An empty window yields an empty decomposition, not a panic.
    #[test]
    fn empty_window_is_empty() {
        let a = analyze(&[], &[1], 3.0, 3.0);
        assert_eq!(a.makespan, 0.0);
        assert!(a.blame.is_empty());
        assert!(a.critical_path.is_empty());
    }

    /// The overlap budget takes each maximum independently across chips
    /// and flags exposure only when the busiest port outruns the
    /// longest Volume window.
    #[test]
    fn overlap_budget_takes_per_chip_maxima() {
        let link = |pid: u32, t0: f64, t1: f64| {
            ev(
                pid,
                TID_OFFCHIP,
                t0,
                t1,
                Payload::Link { bytes: 64, energy_j: 0.0, flow: 1, inbound: false },
            )
        };
        let events = vec![
            // Chip 1: 3s of Volume, 1s of link. Chip 2: 1s of Volume,
            // two link charges totalling 2.5s.
            kernel(1, 0.0, 3.0, Kernel::Volume),
            link(1, 3.0, 4.0),
            kernel(2, 0.0, 1.0, Kernel::Volume),
            link(2, 1.0, 2.0),
            link(2, 2.0, 3.5),
        ];
        let b = overlap_budget(&events, &[1, 2]);
        assert!(close(b.link_seconds, 2.5), "{b:?}");
        assert!(close(b.volume_seconds, 3.0), "{b:?}");
        assert!(!b.link_exposed());
        // Without chip 1's window the busiest port no longer hides.
        let b2 = overlap_budget(&events, &[2]);
        assert!(close(b2.volume_seconds, 1.0), "{b2:?}");
        assert!(b2.link_exposed());
    }
}
