//! Offline stand-in for `bytes`.
//!
//! Implements the subset the workspace uses: `BytesMut` as a growable
//! write buffer with little-endian `put_*` methods, `freeze` into an
//! immutable `Bytes`, and consuming little-endian `get_*` reads plus
//! `slice`/`from_static` on `Bytes`. Backed by plain `Vec<u8>`/offset —
//! no refcounted zero-copy machinery, which the program-image codec does
//! not need.

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn from_static(data: &'static [u8]) -> Self {
        Self { data: data.to_vec(), pos: 0 }
    }

    /// Remaining (unread) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new `Bytes` over the given range of the *remaining* bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self { data: self.data[self.pos..][range].to_vec(), pos: 0 }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow: need {n}, have {}", self.len());
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

/// Write side of the cursor API (little-endian subset).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read side of the cursor API (little-endian subset). Reads consume.
pub trait Buf {
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(self.take(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_round_trip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u16_le(7);
        w.put_u64_le(u64::MAX - 3);
        let mut r = w.freeze();
        assert_eq!(r.len(), 14);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut w = BytesMut::new();
        w.put_u32_le(1);
        w.put_u32_le(2);
        let mut b = w.freeze();
        let _ = b.get_u32_le();
        let s = b.slice(0..4);
        assert_eq!(s.as_ref(), 2u32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.get_u32_le();
    }
}
