//! The `Strategy` trait and the combinators the workspace tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. No shrinking: `generate`
/// is the whole contract.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values the function maps to `Some`, retrying otherwise.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f, reason }
    }

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

// Strategies borrow fine: `&S` generates what `S` generates.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter_map` adapter: rejection-samples until the map accepts.
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map({}) rejected 10000 consecutive candidates", self.reason);
    }
}

/// Uniform choice over same-typed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies.

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as u64;
                (self.start as $wide + rng.below(span) as $wide) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8 => i64, i16 => i64, i32 => i64, i64 => i128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies: generate component-wise, left to right.

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// `any::<T>()`.

/// Full-domain generation for primitives.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// `collection::vec`.

/// Element-count specification: an exact count or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Vec of values drawn from one element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.lo < self.size.hi, "empty size range");
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..2000 {
            let a = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&a));
            let b = (0u8..=32).generate(&mut rng);
            assert!(b <= 32);
            let c = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&c));
            let d = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&d));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::from_name("ends");
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[(0u8..=2).generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn filter_map_rejects_until_accepted() {
        let mut rng = TestRng::from_name("filter");
        let strat = (0u32..10, 0u32..10).prop_filter_map("distinct", |(a, b)| {
            if a == b {
                None
            } else {
                Some((a, b))
            }
        });
        for _ in 0..500 {
            let (a, b) = strat.generate(&mut rng);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::from_name("vec");
        assert_eq!(vec(0u8..5, 3).generate(&mut rng).len(), 3);
        for _ in 0..200 {
            let v = vec(0u8..5, 1..40).generate(&mut rng);
            assert!((1..40).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_choices() {
        let mut rng = TestRng::from_name("oneof");
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..300 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
