//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use — `Strategy` with `prop_map` / `prop_filter_map`, numeric range
//! strategies, tuple strategies, `Just`, `any`, `prop_oneof!`,
//! `collection::vec`, the `proptest!` macro with `proptest_config`, and the
//! `prop_assert*` macros — on top of a deterministic SplitMix64 generator.
//!
//! Differences from the real crate, deliberate for a vendored environment:
//! no shrinking (a failing case reports its inputs via the panic message of
//! the inner assertion), no persistence files, and the per-test seed is
//! derived from the test's name, so runs are reproducible across machines.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` test-block macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running the body over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    // Move generated values into the body exactly as
                    // proptest does; the closure confines any `return`.
                    (|| $body)();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}
