//! Deterministic test runner state: configuration and the RNG.

/// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the vendored test
        // suite quick while still exercising a broad input sample.
        Self { cases: 64 }
    }
}

/// SplitMix64: tiny, full-period, statistically solid for test-input
/// generation. Seeded from the test name so every test draws a distinct,
/// reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, mixed once so similar names diverge.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = Self { state: h ^ 0x9e37_79b9_7f4a_7c15 };
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via rejection-free multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::from_name("unit");
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
