//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!`) with a simple
//! timing loop: warm-up for `warm_up_time`, then run batches until
//! `measurement_time` elapses (at least `sample_size` batches), and report
//! mean / best ns-per-iteration. No outlier analysis, no HTML reports —
//! enough to compare hot paths and catch order-of-magnitude regressions
//! in a vendored, network-free environment.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness configuration + sink for results.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.full_name(), f);
        self
    }

    fn run_one<F>(&self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time, self.sample_size);
        f(&mut b);
        println!("{}", b.report(name));
    }
}

/// A named group of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.criterion.run_one(&format!("{}/{}", self.name, id.full_name()), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.criterion.run_one(&format!("{}/{}", self.name, id.full_name()), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter tag.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { function: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { function: s, parameter: None }
    }
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(warm_up_time: Duration, measurement_time: Duration, sample_size: usize) -> Self {
        Self { warm_up_time, measurement_time, sample_size, samples_ns: Vec::new() }
    }

    /// Times `routine`, storing ns-per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates a batch size targeting ~1 ms per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((1e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement_time
            || self.samples_ns.len() < self.sample_size
        {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples_ns.push(dt * 1e9 / batch as f64);
            if self.samples_ns.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) -> String {
        let mut out = String::new();
        if self.samples_ns.is_empty() {
            let _ = write!(out, "{name:<44} (no samples)");
            return out;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let best = self.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let _ = write!(
            out,
            "{name:<44} mean {:>12}  best {:>12}  ({} samples)",
            fmt_ns(mean),
            fmt_ns(best),
            self.samples_ns.len()
        );
        out
    }

    /// Mean seconds per iteration over the recorded samples (used by the
    /// tracing-overhead smoke bench to compare configurations).
    pub fn mean_seconds(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64 * 1e-9
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group: compatible with both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut b = Bencher::new(Duration::from_millis(5), Duration::from_millis(20), 5);
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.samples_ns.len() >= 5);
        assert!(b.mean_seconds() > 0.0);
        let r = b.report("smoke");
        assert!(r.contains("smoke"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").full_name(), "f/p");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
    }
}
