//! Offline stand-in for `serde`.
//!
//! The workspace annotates its result types with
//! `#[derive(Serialize, Deserialize)]` to document which structures are
//! part of the machine-readable surface, but every byte of JSON the
//! binaries emit is hand-rolled (see `pim_trace::json` and
//! `wavepim_bench::report`). In the vendored build environment the real
//! `serde` is unavailable, so these derives expand to nothing: the
//! attribute remains valid, the annotation keeps its documentation value,
//! and no code is generated.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
