//! Offline stand-in for `rayon`.
//!
//! The dG kernels are written against rayon's parallel-slice adapters
//! (`par_chunks_mut` + `enumerate`/`zip`/`for_each`/`for_each_init`) so the
//! per-element parallel structure stays visible in the source. This shim
//! maps those adapters onto the sequential `std` slice iterators, which
//! support the same downstream combinators; `for_each_init`, which `std`
//! lacks, is supplied by a blanket extension trait. Swapping the real
//! rayon back in is a one-line Cargo change — no call site moves.

pub mod prelude {
    /// `par_chunks` on shared slices (sequentially: `chunks`).
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_chunks_mut` on mutable slices (sequentially: `chunks_mut`).
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// Rayon's `for_each_init` for any iterator: one scratch allocation,
    /// reused across items (sequentially there is exactly one "thread").
    pub trait ParallelIteratorExt: Iterator + Sized {
        #[inline]
        fn for_each_init<T, Init, F>(self, mut init: Init, mut f: F)
        where
            Init: FnMut() -> T,
            F: FnMut(&mut T, Self::Item),
        {
            let mut scratch = init();
            for item in self {
                f(&mut scratch, item);
            }
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}
}
