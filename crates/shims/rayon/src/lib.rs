//! Offline stand-in for `rayon` — with a real thread pool.
//!
//! The dG kernels and the cluster runner are written against rayon's
//! parallel-slice adapters (`par_chunks`/`par_chunks_mut` +
//! `enumerate`/`zip`/`for_each`/`for_each_init`) so the per-element and
//! per-chip parallel structure stays visible in the source. This shim
//! implements those adapters on `std::thread::scope`:
//!
//! - every `for_each`/`for_each_init` call spawns up to
//!   [`current_num_threads`] scoped workers (never more than there are
//!   items) that pull contiguous *batches* of chunk indices from one
//!   shared atomic counter — a granularity-aware work deal (one atomic
//!   op per batch, not per item, with ~4 batches per worker so an
//!   uneven batch still rebalances) that keeps tiny per-item loops from
//!   drowning in counter contention when the host has fewer cores than
//!   workers;
//! - with one worker (or one item) the loop runs inline on the calling
//!   thread — no spawn, no atomics, identical to the old sequential
//!   shim;
//! - `for_each_init` allocates one scratch value per *worker* (exactly
//!   rayon's contract: per thread, not per item).
//!
//! The thread count comes from `RAYON_NUM_THREADS` (default: available
//! cores), read once; [`set_num_threads`] overrides it in-process so
//! benchmarks can sweep a scaling curve without re-exec'ing.
//!
//! Determinism: every adapter hands each worker a *disjoint* chunk of the
//! underlying slice, and the closures are `Fn + Sync` (shared captures
//! are immutable). The result of a parallel loop is therefore bit-
//! identical at any thread count — only the order in which disjoint
//! chunks are written varies. Swapping the real rayon back in is a
//! one-line Cargo change; no call site moves.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// In-process override for the pool width; 0 = not set.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// `RAYON_NUM_THREADS` (or core count), resolved once.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// The worker count parallel loops will use: the [`set_num_threads`]
/// override if set, else `RAYON_NUM_THREADS`, else the available cores.
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Overrides the pool width for subsequent parallel loops (0 restores
/// the environment default). Real rayon configures this through
/// `ThreadPoolBuilder`; the shim exposes the one knob the benchmarks
/// need to sweep a thread-scaling curve in-process.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

pub mod prelude {
    pub use crate::{ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A fixed-length source of independent items, indexable from any
/// worker. The driver guarantees each index is produced at most once —
/// that is what lets `par_chunks_mut` hand out disjoint `&mut` chunks.
pub trait ParallelIterator: Sized + Sync {
    type Item;

    /// Number of items.
    fn pi_len(&self) -> usize;

    /// Produces item `i`.
    ///
    /// # Safety
    /// Each index in `0..pi_len()` must be produced at most once across
    /// all callers (the mutable adapters return aliasing-free `&mut`
    /// slices only under that contract).
    unsafe fn pi_item(&self, i: usize) -> Self::Item;

    /// Pairs every item with its index, like `Iterator::enumerate`.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Zips two equal-length parallel iterators item-wise.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Runs `f` on every item, on up to [`current_num_threads`] threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// Like `for_each`, but each worker thread first builds one scratch
    /// value with `init` and reuses it across all items it processes.
    fn for_each_init<S, Init, F>(self, init: Init, f: F)
    where
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) + Sync,
    {
        let n = self.pi_len();
        if n == 0 {
            return;
        }
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            let mut scratch = init();
            for i in 0..n {
                // SAFETY: the sequential loop visits each index once.
                f(&mut scratch, unsafe { self.pi_item(i) });
            }
            return;
        }
        // Deal contiguous batches, not single indices: one atomic op
        // per batch bounds counter contention, and ~4 batches per
        // worker keeps enough slack for an uneven batch to rebalance.
        let batch = n.div_ceil(workers * 4).max(1);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        let start = next.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + batch).min(n) {
                            // SAFETY: fetch_add hands out each batch of
                            // indices exactly once across all workers.
                            f(&mut scratch, unsafe { self.pi_item(i) });
                        }
                    }
                });
            }
        });
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks { slice: self, chunk: chunk_size }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk: chunk_size,
            _life: PhantomData,
        }
    }
}

/// Disjoint shared chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    unsafe fn pi_item(&self, i: usize) -> &'a [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Disjoint mutable chunks of a slice. Holds a raw pointer so distinct
/// indices can be materialized as `&mut` from different threads; the
/// one-index-once contract of [`ParallelIterator::pi_item`] keeps the
/// chunks non-aliasing.
pub struct ParChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _life: PhantomData<&'a mut [T]>,
}

// SAFETY: ParChunksMut owns the slice borrow exclusively; workers only
// ever touch disjoint index ranges (driver contract), and T: Send makes
// handing those ranges to other threads sound. No `&T` is ever shared.
unsafe impl<T: Send> Send for ParChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ParChunksMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    unsafe fn pi_item(&self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.len);
        debug_assert!(start < self.len);
        // SAFETY: caller produces each index at most once, so the ranges
        // [start, end) never overlap between outstanding items.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    inner: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    unsafe fn pi_item(&self, i: usize) -> (usize, P::Item) {
        // SAFETY: forwards the caller's one-index-once contract.
        (i, unsafe { self.inner.pi_item(i) })
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }

    unsafe fn pi_item(&self, i: usize) -> (A::Item, B::Item) {
        // SAFETY: forwards the caller's one-index-once contract to both
        // sides.
        unsafe { (self.a.pi_item(i), self.b.pi_item(i)) }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// `set_num_threads` is process-global; tests that touch it must not
    /// interleave.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_chunks_mut_writes_every_chunk_once() {
        let mut v = vec![0usize; 103];
        v.as_mut_slice().par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x += i + 1;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 10 + 1);
        }
    }

    #[test]
    fn zip_chain_matches_sequential() {
        let n = 64;
        let mut a = vec![0.0f64; n];
        let mut b = vec![0.0f64; n];
        let c: Vec<f64> = (0..n).map(|i| i as f64).collect();
        a.as_mut_slice()
            .par_chunks_mut(4)
            .zip(b.as_mut_slice().par_chunks_mut(4))
            .zip(c.par_chunks(4))
            .for_each(|((ac, bc), cc)| {
                for ((x, y), z) in ac.iter_mut().zip(bc.iter_mut()).zip(cc) {
                    *x = z * 2.0;
                    *y = z + 1.0;
                }
            });
        for i in 0..n {
            assert_eq!(a[i], i as f64 * 2.0);
            assert_eq!(b[i], i as f64 + 1.0);
        }
    }

    #[test]
    fn for_each_init_scratch_is_per_worker() {
        // The scratch must arrive zeroed-or-reused, never shared between
        // concurrent items: sum into a per-worker accumulator, then fold
        // through a mutex only at the end (here: per item for the check).
        let data: Vec<u64> = (0..1000).collect();
        let total = std::sync::Mutex::new(0u64);
        data.par_chunks(7).for_each_init(
            || 0u64,
            |acc, chunk| {
                *acc = chunk.iter().sum();
                *total.lock().unwrap() += *acc;
            },
        );
        assert_eq!(*total.lock().unwrap(), 1000 * 999 / 2);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut v: Vec<f64> = (0..517).map(|i| i as f64).collect();
            v.as_mut_slice().par_chunks_mut(16).enumerate().for_each(|(i, chunk)| {
                for x in chunk.iter_mut() {
                    *x = x.sin() * (i as f64 + 1.0);
                }
            });
            set_num_threads(0);
            v
        };
        let seq = run(1);
        for t in [2, 4, 8] {
            assert_eq!(seq, run(t), "thread count {t} changed the result");
        }
    }

    #[test]
    fn batched_deal_visits_every_index_exactly_once() {
        // The batching is a scheduling detail; the one-index-once
        // contract must survive it at every worker count, including
        // counts that do not divide the item count.
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [2usize, 3, 5, 8] {
            set_num_threads(threads);
            let n = 1013;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let items: Vec<usize> = (0..n).collect();
            items.par_chunks(1).for_each(|chunk| {
                hits[chunk[0]].fetch_add(1, Ordering::Relaxed);
            });
            set_num_threads(0);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn thread_override_round_trips() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(3);
        assert_eq!(current_num_threads(), 3);
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
    }
}
