//! Disassembly: human-readable listings of instructions and programs —
//! the debugging view of what the Wave-PIM compiler emits.

use std::fmt;

use crate::instr::{AluOp, Instr};
use crate::stream::InstrStream;

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Mac => "mac",
            AluOp::Neg => "neg",
            AluOp::Mov => "mov",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Read { block, row, offset, words } => {
                write!(f, "read    b{} r{row} +{offset} x{words}", block.0)
            }
            Instr::Write { block, row, offset, words } => {
                write!(f, "write   b{} r{row} +{offset} x{words}", block.0)
            }
            Instr::Broadcast { block, dst_first, dst_last, offset, words } => {
                write!(f, "bcast   b{} r{dst_first}..={dst_last} +{offset} x{words}", block.0)
            }
            Instr::Copy { src, dst, words } => {
                write!(f, "memcpy  b{} -> b{} x{words}", src.0, dst.0)
            }
            Instr::Arith { block, op, first_row, last_row, dst, a, b } => {
                write!(f, "{op:<4}    b{} r{first_row}..={last_row} c{dst} <- c{a}, c{b}", block.0)
            }
            Instr::Lut { row, offset_s, lut_block, offset_d } => {
                write!(f, "lut     row {row} +{offset_s} via b{lut_block} -> +{offset_d}")
            }
            Instr::LoadOffchip { block, bytes } => {
                write!(f, "dma_in  b{} {bytes}B", block.0)
            }
            Instr::StoreOffchip { block, bytes } => {
                write!(f, "dma_out b{} {bytes}B", block.0)
            }
            Instr::Sync => write!(f, "sync"),
        }
    }
}

/// Renders a full program listing with instruction indices; `limit` caps
/// the listed instructions (an ellipsis line marks the cut).
pub fn listing(stream: &InstrStream, limit: usize) -> String {
    let mut out = String::new();
    for (i, instr) in stream.instrs().iter().enumerate() {
        if i >= limit {
            out.push_str(&format!("… {} more instructions\n", stream.len() - limit));
            break;
        }
        out.push_str(&format!("{i:>6}: {instr}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BlockId;

    #[test]
    fn every_form_renders_distinctly() {
        let instrs = [
            Instr::Read { block: BlockId(1), row: 2, offset: 3, words: 4 },
            Instr::Write { block: BlockId(1), row: 2, offset: 3, words: 4 },
            Instr::Broadcast {
                block: BlockId(5),
                dst_first: 0,
                dst_last: 511,
                offset: 7,
                words: 1,
            },
            Instr::Copy { src: BlockId(1), dst: BlockId(9), words: 4 },
            Instr::Arith {
                block: BlockId(0),
                op: AluOp::Mac,
                first_row: 0,
                last_row: 511,
                dst: 8,
                a: 23,
                b: 22,
            },
            Instr::Lut { row: 1000, offset_s: 16, lut_block: 64, offset_d: 0 },
            Instr::LoadOffchip { block: BlockId(3), bytes: 2048 },
            Instr::StoreOffchip { block: BlockId(3), bytes: 2048 },
            Instr::Sync,
        ];
        let rendered: Vec<String> = instrs.iter().map(|i| i.to_string()).collect();
        let mut unique = rendered.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), rendered.len(), "{rendered:?}");
        assert!(rendered[0].contains("read"));
        assert!(rendered[3].contains("b1 -> b9"));
        assert!(rendered[4].contains("mac"));
        assert!(rendered[5].contains("via b64"));
    }

    #[test]
    fn listing_respects_the_limit() {
        let mut s = InstrStream::new();
        for _ in 0..10 {
            s.push(Instr::Sync);
        }
        let full = listing(&s, 100);
        assert_eq!(full.lines().count(), 10);
        let cut = listing(&s, 3);
        assert_eq!(cut.lines().count(), 4);
        assert!(cut.contains("7 more instructions"));
    }
}
