//! Binary program images.
//!
//! The host "sends instructions" to the chip (§4.1); on a real system
//! they travel as a binary image. This module serializes instruction
//! streams to the 64-bit wire format of [`crate::encode`] with a small
//! header, and deserializes them back — the format a host driver would
//! DMA to the PIM's instruction decoder.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::encode::{decode, encode, DecodeError};
use crate::instr::Instr;
use crate::stream::InstrStream;

/// Magic number identifying a Wave-PIM program image ("WPIM").
pub const MAGIC: u32 = 0x5750_494D;
/// Current image format version.
pub const VERSION: u16 = 1;

/// Errors from [`load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The image is shorter than its header or declared length.
    Truncated,
    /// Bad magic number.
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u16),
    /// An instruction word failed to decode.
    BadInstr { index: usize, source: DecodeError },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::Truncated => write!(f, "program image is truncated"),
            ProgramError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            ProgramError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ProgramError::BadInstr { index, source } => {
                write!(f, "instruction {index} failed to decode: {source}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Serializes a stream into a binary image:
/// `magic(u32) | version(u16) | reserved(u16) | count(u64) | words…`,
/// all little-endian.
pub fn save(stream: &InstrStream) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + 8 * stream.len());
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0);
    buf.put_u64_le(stream.len() as u64);
    for instr in stream.instrs() {
        buf.put_u64_le(encode(instr));
    }
    buf.freeze()
}

/// Deserializes a binary image back into a stream (statistics are
/// rebuilt from the decoded instructions).
pub fn load(mut image: Bytes) -> Result<InstrStream, ProgramError> {
    if image.len() < 16 {
        return Err(ProgramError::Truncated);
    }
    let magic = image.get_u32_le();
    if magic != MAGIC {
        return Err(ProgramError::BadMagic(magic));
    }
    let version = image.get_u16_le();
    if version != VERSION {
        return Err(ProgramError::BadVersion(version));
    }
    let _reserved = image.get_u16_le();
    let count = image.get_u64_le() as usize;
    if image.len() < count * 8 {
        return Err(ProgramError::Truncated);
    }
    let mut stream = InstrStream::new();
    for index in 0..count {
        let word = image.get_u64_le();
        let instr: Instr =
            decode(word).map_err(|source| ProgramError::BadInstr { index, source })?;
        stream.push(instr);
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, BlockId};

    fn sample_stream() -> InstrStream {
        let mut s = InstrStream::new();
        s.push(Instr::Read { block: BlockId(3), row: 100, offset: 4, words: 2 });
        s.push(Instr::Copy { src: BlockId(3), dst: BlockId(7), words: 2 });
        s.push(Instr::Write { block: BlockId(7), row: 50, offset: 0, words: 2 });
        s.push(Instr::Arith {
            block: BlockId(7),
            op: AluOp::Mac,
            first_row: 0,
            last_row: 511,
            dst: 1,
            a: 2,
            b: 3,
        });
        s.push(Instr::Lut { row: 1234, offset_s: 5, lut_block: 42, offset_d: 9 });
        s.push(Instr::Sync);
        s
    }

    #[test]
    fn save_load_round_trip() {
        let original = sample_stream();
        let image = save(&original);
        assert_eq!(image.len(), 16 + 8 * original.len());
        let loaded = load(image).expect("valid image");
        assert_eq!(loaded.instrs(), original.instrs());
        // Statistics are rebuilt identically.
        assert_eq!(loaded.stats(), original.stats());
    }

    #[test]
    fn empty_stream_round_trips() {
        let image = save(&InstrStream::new());
        let loaded = load(image).expect("valid empty image");
        assert!(loaded.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bad = BytesMut::new();
        bad.put_u32_le(0xDEAD_BEEF);
        bad.put_u16_le(VERSION);
        bad.put_u16_le(0);
        bad.put_u64_le(0);
        assert_eq!(load(bad.freeze()), Err(ProgramError::BadMagic(0xDEAD_BEEF)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bad = BytesMut::new();
        bad.put_u32_le(MAGIC);
        bad.put_u16_le(99);
        bad.put_u16_le(0);
        bad.put_u64_le(0);
        assert_eq!(load(bad.freeze()), Err(ProgramError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation() {
        let image = save(&sample_stream());
        let truncated = image.slice(0..image.len() - 4);
        assert_eq!(load(truncated), Err(ProgramError::Truncated));
        assert_eq!(load(Bytes::from_static(b"tiny")), Err(ProgramError::Truncated));
    }

    #[test]
    fn rejects_corrupt_instruction() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u64_le(1);
        buf.put_u64_le(0x7Fu64 << 57); // unknown opcode
        match load(buf.freeze()) {
            Err(ProgramError::BadInstr { index: 0, .. }) => {}
            other => panic!("expected BadInstr, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_render() {
        assert!(ProgramError::Truncated.to_string().contains("truncated"));
        assert!(ProgramError::BadMagic(1).to_string().contains("magic"));
    }
}
