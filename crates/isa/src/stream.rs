//! Instruction streams and their statistics.
//!
//! The Wave-PIM compiler (the `wave-pim` crate) emits one stream per
//! kernel; the PIM simulator consumes them. Streams keep running
//! statistics so the analytic cost model can work from counts without
//! re-scanning.

use serde::{Deserialize, Serialize};

use crate::instr::Instr;

/// The FNV-1a offset basis — the canonical seed for [`fnv1a`] chains.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a mixing step folding a 64-bit word into hash `h`, byte by
/// byte. Used wherever the workspace needs a stable, dependency-free
/// content hash (instruction streams, program cache keys).
#[inline]
pub fn fnv1a(mut h: u64, x: u64) -> u64 {
    for byte in x.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Class-wise instruction counts of a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    pub reads: u64,
    pub writes: u64,
    pub broadcasts: u64,
    /// Rows covered by broadcasts (each broadcast replicates into many
    /// rows; the energy model charges per destination row).
    pub broadcast_rows: u64,
    pub copies: u64,
    /// Total 32-bit words moved by inter-block copies.
    pub copy_words: u64,
    pub ariths: u64,
    /// Adds/Subs/Negs/Movs vs Muls/Macs, split because their bit-serial
    /// cycle counts differ by ~2× (see `pim-sim::params`).
    pub arith_addlike: u64,
    pub arith_mullike: u64,
    /// Rows covered by row-parallel arithmetic (each selected row is one
    /// crossbar activation; the energy model charges per row). Defaults
    /// to 0 when deserializing stats recorded before this counter.
    #[serde(default)]
    pub arith_rows: u64,
    pub luts: u64,
    pub offchip_loads: u64,
    pub offchip_stores: u64,
    /// Total bytes crossing the chip boundary.
    pub offchip_bytes: u64,
    pub syncs: u64,
}

impl StreamStats {
    /// Total instruction count.
    pub fn total(&self) -> u64 {
        self.reads
            + self.writes
            + self.broadcasts
            + self.copies
            + self.ariths
            + self.luts
            + self.offchip_loads
            + self.offchip_stores
            + self.syncs
    }

    /// Accumulates one instruction into the counters.
    pub fn record(&mut self, instr: &Instr) {
        match instr {
            Instr::Read { .. } => self.reads += 1,
            Instr::Write { .. } => self.writes += 1,
            Instr::Broadcast { dst_first, dst_last, .. } => {
                self.broadcasts += 1;
                self.broadcast_rows += (*dst_last as u64).saturating_sub(*dst_first as u64) + 1;
            }
            Instr::Copy { words, .. } => {
                self.copies += 1;
                self.copy_words += *words as u64;
            }
            Instr::Arith { op, first_row, last_row, .. } => {
                self.ariths += 1;
                // `saturating_sub`, like `broadcast_rows`: a degenerate
                // range (last < first) counts one row here and is rejected
                // by the block when executed — the counters must never be
                // the thing that panics first.
                self.arith_rows += (*last_row as u64).saturating_sub(*first_row as u64) + 1;
                match op {
                    crate::AluOp::Mul | crate::AluOp::Mac => self.arith_mullike += 1,
                    _ => self.arith_addlike += 1,
                }
            }
            Instr::Lut { .. } => self.luts += 1,
            Instr::LoadOffchip { bytes, .. } => {
                self.offchip_loads += 1;
                self.offchip_bytes += *bytes as u64;
            }
            Instr::StoreOffchip { bytes, .. } => {
                self.offchip_stores += 1;
                self.offchip_bytes += *bytes as u64;
            }
            Instr::Sync => self.syncs += 1,
        }
    }

    /// Merges another stream's statistics into this one.
    pub fn merge(&mut self, other: &StreamStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.broadcasts += other.broadcasts;
        self.broadcast_rows += other.broadcast_rows;
        self.copies += other.copies;
        self.copy_words += other.copy_words;
        self.ariths += other.ariths;
        self.arith_addlike += other.arith_addlike;
        self.arith_mullike += other.arith_mullike;
        self.arith_rows += other.arith_rows;
        self.luts += other.luts;
        self.offchip_loads += other.offchip_loads;
        self.offchip_stores += other.offchip_stores;
        self.offchip_bytes += other.offchip_bytes;
        self.syncs += other.syncs;
    }

    /// Crossbar row activations implied by the counted instructions: one
    /// row per read/write, one per destination row of a broadcast, one
    /// per selected row of a row-parallel arithmetic op, and three per
    /// LUT fetch (Algorithm 1: two reads plus the result write). O(1)
    /// from the running counters — the simulator's metrics path used to
    /// rescan the whole stream for this.
    pub fn row_activations(&self) -> u64 {
        self.reads + self.writes + self.broadcast_rows + self.arith_rows + 3 * self.luts
    }

    /// Scales all counters (e.g. one element's stream × element count).
    pub fn scaled(&self, by: u64) -> StreamStats {
        StreamStats {
            reads: self.reads * by,
            writes: self.writes * by,
            broadcasts: self.broadcasts * by,
            broadcast_rows: self.broadcast_rows * by,
            copies: self.copies * by,
            copy_words: self.copy_words * by,
            ariths: self.ariths * by,
            arith_addlike: self.arith_addlike * by,
            arith_mullike: self.arith_mullike * by,
            arith_rows: self.arith_rows * by,
            luts: self.luts * by,
            offchip_loads: self.offchip_loads * by,
            offchip_stores: self.offchip_stores * by,
            offchip_bytes: self.offchip_bytes * by,
            syncs: self.syncs * by,
        }
    }
}

/// An instruction stream with running statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrStream {
    instrs: Vec<Instr>,
    stats: StreamStats,
}

impl InstrStream {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one instruction.
    pub fn push(&mut self, instr: Instr) {
        self.stats.record(&instr);
        self.instrs.push(instr);
    }

    /// Appends every instruction of another stream.
    pub fn extend_from(&mut self, other: &InstrStream) {
        self.instrs.extend_from_slice(&other.instrs);
        self.stats.merge(&other.stats);
    }

    /// Replaces the instruction at `index` with a *stats-neutral*
    /// substitute: same instruction class, same cost-relevant payload
    /// (rows covered, words moved, add-like vs mul-like, off-chip
    /// bytes). This is the primitive behind cached-program patch tables
    /// — a replayed stream only ever retargets addresses/offsets, never
    /// changes its cost shape, so the running statistics stay exact
    /// without a rescan.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds or the replacement would
    /// change the stream statistics.
    pub fn patch(&mut self, index: usize, instr: Instr) {
        let mut old = StreamStats::default();
        old.record(&self.instrs[index]);
        let mut new = StreamStats::default();
        new.record(&instr);
        assert_eq!(
            old, new,
            "patch at {index} must be stats-neutral: {:?} -> {instr:?}",
            self.instrs[index]
        );
        self.instrs[index] = instr;
    }

    /// Folds every instruction's 64-bit encoding into `seed` with the
    /// FNV-1a mix — a stable content hash of the stream. Two streams
    /// hash equal exactly when they encode the same program, so a cache
    /// layer can key compiled programs by what they *are* rather than by
    /// where they came from.
    pub fn content_hash(&self, seed: u64) -> u64 {
        self.instrs.iter().fold(seed, |h, instr| fnv1a(h, crate::encode(instr)))
    }

    /// The instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The running statistics.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when no instructions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, BlockId};

    #[test]
    fn stats_track_pushes() {
        let mut s = InstrStream::new();
        s.push(Instr::Read { block: BlockId(0), row: 0, offset: 0, words: 4 });
        s.push(Instr::Copy { src: BlockId(0), dst: BlockId(5), words: 32 });
        s.push(Instr::Copy { src: BlockId(1), dst: BlockId(2), words: 8 });
        s.push(Instr::Arith {
            block: BlockId(0),
            op: AluOp::Mul,
            first_row: 0,
            last_row: 511,
            dst: 0,
            a: 1,
            b: 2,
        });
        s.push(Instr::Arith {
            block: BlockId(0),
            op: AluOp::Add,
            first_row: 0,
            last_row: 511,
            dst: 0,
            a: 1,
            b: 2,
        });
        s.push(Instr::Broadcast {
            block: BlockId(0),
            dst_first: 0,
            dst_last: 511,
            offset: 0,
            words: 1,
        });
        s.push(Instr::LoadOffchip { block: BlockId(0), bytes: 2048 });
        s.push(Instr::Sync);

        let st = s.stats();
        assert_eq!(st.reads, 1);
        assert_eq!(st.copies, 2);
        assert_eq!(st.copy_words, 40);
        assert_eq!(st.ariths, 2);
        assert_eq!(st.arith_mullike, 1);
        assert_eq!(st.arith_addlike, 1);
        assert_eq!(st.broadcasts, 1);
        assert_eq!(st.broadcast_rows, 512);
        assert_eq!(st.offchip_bytes, 2048);
        assert_eq!(st.syncs, 1);
        assert_eq!(st.total(), 8);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn arith_rows_and_row_activations_track_pushes() {
        let mut s = InstrStream::new();
        s.push(Instr::Arith {
            block: BlockId(0),
            op: AluOp::Mul,
            first_row: 0,
            last_row: 511,
            dst: 0,
            a: 1,
            b: 2,
        });
        s.push(Instr::Arith {
            block: BlockId(0),
            op: AluOp::Add,
            first_row: 10,
            last_row: 10,
            dst: 0,
            a: 1,
            b: 2,
        });
        s.push(Instr::Read { block: BlockId(0), row: 0, offset: 0, words: 1 });
        s.push(Instr::Write { block: BlockId(0), row: 0, offset: 0, words: 1 });
        s.push(Instr::Broadcast {
            block: BlockId(0),
            dst_first: 0,
            dst_last: 3,
            offset: 0,
            words: 1,
        });
        s.push(Instr::Lut { row: 0, offset_s: 0, lut_block: 1, offset_d: 1 });
        let st = s.stats();
        assert_eq!(st.arith_rows, 513);
        assert_eq!(st.row_activations(), 513 + 1 + 1 + 4 + 3);
    }

    #[test]
    fn degenerate_ranges_saturate_to_one_row_in_both_counters() {
        // A malformed (last < first) range must count one row, exactly
        // like `broadcast_rows` — the simulator rejects the instruction
        // at execution; the counters stay panic-free.
        let mut st = StreamStats::default();
        st.record(&Instr::Broadcast {
            block: BlockId(0),
            dst_first: 7,
            dst_last: 2,
            offset: 0,
            words: 1,
        });
        st.record(&Instr::Arith {
            block: BlockId(0),
            op: AluOp::Add,
            first_row: 9,
            last_row: 3,
            dst: 0,
            a: 1,
            b: 2,
        });
        assert_eq!(st.broadcast_rows, 1);
        assert_eq!(st.arith_rows, 1);
        assert_eq!(st.row_activations(), 2);
    }

    #[test]
    fn merge_and_scale_are_consistent() {
        let mut a = StreamStats::default();
        a.record(&Instr::Copy { src: BlockId(0), dst: BlockId(1), words: 10 });
        let mut doubled = a;
        doubled.merge(&a);
        assert_eq!(doubled, a.scaled(2));
        assert_eq!(a.scaled(3).copy_words, 30);
    }

    #[test]
    fn patch_replaces_without_touching_stats() {
        let mut s = InstrStream::new();
        s.push(Instr::Read { block: BlockId(0), row: 9, offset: 10, words: 1 });
        s.push(Instr::Sync);
        let before = *s.stats();
        s.patch(0, Instr::Read { block: BlockId(0), row: 9, offset: 11, words: 1 });
        assert_eq!(*s.stats(), before);
        assert_eq!(s.instrs()[0], Instr::Read { block: BlockId(0), row: 9, offset: 11, words: 1 });
    }

    #[test]
    #[should_panic(expected = "stats-neutral")]
    fn patch_rejects_class_changes() {
        let mut s = InstrStream::new();
        s.push(Instr::Sync);
        s.patch(0, Instr::Read { block: BlockId(0), row: 0, offset: 0, words: 1 });
    }

    #[test]
    fn extend_from_merges_everything() {
        let mut a = InstrStream::new();
        a.push(Instr::Sync);
        let mut b = InstrStream::new();
        b.push(Instr::Read { block: BlockId(1), row: 1, offset: 0, words: 1 });
        b.push(Instr::Sync);
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.stats().syncs, 2);
        assert_eq!(a.stats().reads, 1);
    }
}
