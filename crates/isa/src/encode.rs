//! 64-bit binary encoding of the ISA.
//!
//! Every instruction packs into one `u64` with the opcode in bits 63:57.
//! The look-up-table instruction uses the exact field layout of the
//! paper's Fig. 4; the remaining layouts are chosen so all fields of the
//! largest instruction (Broadcast: 17-bit block + two 10-bit rows + 5-bit
//! offset + 6-bit word count) still fit beneath the opcode.

use crate::instr::{AluOp, BlockId, Instr};

/// Error cases for [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode bits name no instruction.
    UnknownOpcode(u8),
    /// The ALU sub-opcode of an Arith instruction is invalid.
    UnknownAluOp(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::UnknownAluOp(op) => write!(f, "unknown ALU sub-op {op:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const fn field(value: u64, shift: u32, bits: u32) -> u64 {
    (value & ((1 << bits) - 1)) << shift
}

const fn extract(word: u64, shift: u32, bits: u32) -> u64 {
    (word >> shift) & ((1 << bits) - 1)
}

fn alu_code(op: AluOp) -> u64 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Mac => 3,
        AluOp::Neg => 4,
        AluOp::Mov => 5,
    }
}

fn alu_from_code(code: u8) -> Result<AluOp, DecodeError> {
    Ok(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Mac,
        4 => AluOp::Neg,
        5 => AluOp::Mov,
        other => return Err(DecodeError::UnknownAluOp(other)),
    })
}

/// Encodes an instruction into its 64-bit form.
///
/// Field layouts (opcode always bits 63:57):
/// * Read/Write:  `block[56:40] row[39:30] offset[29:25] words[24:19]`
/// * Broadcast:   `block[56:40] dst_first[39:30] dst_last[29:20]
///   offset[19:15] words[14:9]`
/// * Copy:        `src[56:40] dst[39:23] words[22:7]`
/// * Arith:       `block[56:40] alu[39:36] first[35:26] last[25:16]
///   dst[15:11] a[10:6] b[5:1]`
/// * Lut (Fig 4): `row[56:31] offset_s[30:26] lut_block[25:5]
///   offset_d[4:0]`
/// * Load/Store:  `block[56:40] bytes[39:8]`
pub fn encode(instr: &Instr) -> u64 {
    let op = field(instr.opcode() as u64, 57, 7);
    match *instr {
        Instr::Sync => op,
        Instr::Read { block, row, offset, words } | Instr::Write { block, row, offset, words } => {
            op | field(block.0 as u64, 40, 17)
                | field(row as u64, 30, 10)
                | field(offset as u64, 25, 5)
                | field(words as u64, 19, 6)
        }
        Instr::Broadcast { block, dst_first, dst_last, offset, words } => {
            op | field(block.0 as u64, 40, 17)
                | field(dst_first as u64, 30, 10)
                | field(dst_last as u64, 20, 10)
                | field(offset as u64, 15, 5)
                | field(words as u64, 9, 6)
        }
        Instr::Copy { src, dst, words } => {
            op | field(src.0 as u64, 40, 17)
                | field(dst.0 as u64, 23, 17)
                | field(words as u64, 7, 16)
        }
        Instr::Arith { block, op: alu, first_row, last_row, dst, a, b } => {
            op | field(block.0 as u64, 40, 17)
                | field(alu_code(alu), 36, 4)
                | field(first_row as u64, 26, 10)
                | field(last_row as u64, 16, 10)
                | field(dst as u64, 11, 5)
                | field(a as u64, 6, 5)
                | field(b as u64, 1, 5)
        }
        Instr::Lut { row, offset_s, lut_block, offset_d } => {
            // Exactly Fig. 4 of the paper.
            op | field(row as u64, 31, 26)
                | field(offset_s as u64, 26, 5)
                | field(lut_block as u64, 5, 21)
                | field(offset_d as u64, 0, 5)
        }
        Instr::LoadOffchip { block, bytes } | Instr::StoreOffchip { block, bytes } => {
            op | field(block.0 as u64, 40, 17) | field(bytes as u64, 8, 32)
        }
    }
}

/// Decodes a 64-bit word back into an instruction.
pub fn decode(word: u64) -> Result<Instr, DecodeError> {
    let opcode = extract(word, 57, 7) as u8;
    Ok(match opcode {
        0x00 => Instr::Sync,
        0x01 | 0x02 => {
            let block = BlockId(extract(word, 40, 17) as u32);
            let row = extract(word, 30, 10) as u16;
            let offset = extract(word, 25, 5) as u8;
            let words = extract(word, 19, 6) as u8;
            if opcode == 0x01 {
                Instr::Read { block, row, offset, words }
            } else {
                Instr::Write { block, row, offset, words }
            }
        }
        0x03 => Instr::Broadcast {
            block: BlockId(extract(word, 40, 17) as u32),
            dst_first: extract(word, 30, 10) as u16,
            dst_last: extract(word, 20, 10) as u16,
            offset: extract(word, 15, 5) as u8,
            words: extract(word, 9, 6) as u8,
        },
        0x04 => Instr::Copy {
            src: BlockId(extract(word, 40, 17) as u32),
            dst: BlockId(extract(word, 23, 17) as u32),
            words: extract(word, 7, 16) as u16,
        },
        0x05 => Instr::Arith {
            block: BlockId(extract(word, 40, 17) as u32),
            op: alu_from_code(extract(word, 36, 4) as u8)?,
            first_row: extract(word, 26, 10) as u16,
            last_row: extract(word, 16, 10) as u16,
            dst: extract(word, 11, 5) as u8,
            a: extract(word, 6, 5) as u8,
            b: extract(word, 1, 5) as u8,
        },
        0x06 => Instr::Lut {
            row: extract(word, 31, 26) as u32,
            offset_s: extract(word, 26, 5) as u8,
            lut_block: extract(word, 5, 21) as u32,
            offset_d: extract(word, 0, 5) as u8,
        },
        0x07 | 0x08 => {
            let block = BlockId(extract(word, 40, 17) as u32);
            let bytes = extract(word, 8, 32) as u32;
            if opcode == 0x07 {
                Instr::LoadOffchip { block, bytes }
            } else {
                Instr::StoreOffchip { block, bytes }
            }
        }
        other => return Err(DecodeError::UnknownOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Instr) {
        let encoded = encode(&i);
        let decoded = decode(encoded).expect("decodes");
        assert_eq!(decoded, i, "round trip failed, encoded {encoded:#018x}");
    }

    #[test]
    fn round_trips_every_form() {
        round_trip(Instr::Sync);
        round_trip(Instr::Read { block: BlockId(131071), row: 1023, offset: 31, words: 32 });
        round_trip(Instr::Write { block: BlockId(5), row: 512, offset: 0, words: 1 });
        round_trip(Instr::Broadcast {
            block: BlockId(777),
            dst_first: 0,
            dst_last: 511,
            offset: 30,
            words: 32,
        });
        round_trip(Instr::Copy { src: BlockId(0), dst: BlockId(131071), words: 65535 });
        for op in AluOp::ALL {
            round_trip(Instr::Arith {
                block: BlockId(9999),
                op,
                first_row: 0,
                last_row: 511,
                dst: 31,
                a: 15,
                b: 7,
            });
        }
        round_trip(Instr::Lut {
            row: (1 << 26) - 1,
            offset_s: 31,
            lut_block: (1 << 21) - 1,
            offset_d: 31,
        });
        round_trip(Instr::LoadOffchip { block: BlockId(42), bytes: u32::MAX });
        round_trip(Instr::StoreOffchip { block: BlockId(42), bytes: 131072 });
    }

    #[test]
    fn lut_encoding_matches_figure_4_layout() {
        let i = Instr::Lut {
            row: 0x2AB_CDEF,
            offset_s: 0b10101,
            lut_block: 0x1F_F00F,
            offset_d: 0b01010,
        };
        let w = encode(&i);
        assert_eq!((w >> 57) & 0x7F, 0x06, "opcode bits 63:57");
        assert_eq!((w >> 31) & 0x3FF_FFFF, 0x2AB_CDEF, "Row ID bits 56:31");
        assert_eq!((w >> 26) & 0x1F, 0b10101, "Offset_S bits 30:26");
        assert_eq!((w >> 5) & 0x1F_FFFF, 0x1F_F00F, "LUT Block ID bits 25:5");
        assert_eq!(w & 0x1F, 0b01010, "Offset_D bits 4:0");
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        let bogus = 0x7Fu64 << 57;
        assert_eq!(decode(bogus), Err(DecodeError::UnknownOpcode(0x7F)));
    }

    #[test]
    fn unknown_alu_sub_op_is_an_error() {
        // Opcode 0x05 with ALU code 15.
        let word = (0x05u64 << 57) | (15u64 << 36);
        assert_eq!(decode(word), Err(DecodeError::UnknownAluOp(15)));
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(DecodeError::UnknownOpcode(9).to_string().contains("0x9"));
        assert!(DecodeError::UnknownAluOp(12).to_string().contains("0xc"));
    }
}
