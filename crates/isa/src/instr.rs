//! Instruction forms.

use serde::{Deserialize, Serialize};

/// Chip-global memory-block identifier. With 256 blocks per 32 MB tile,
/// a 16 GB chip has 131,072 blocks — 17 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Maximum encodable id (17 bits).
    pub const MAX: u32 = (1 << 17) - 1;

    /// The tile this block belongs to (256 blocks per tile).
    #[inline]
    pub fn tile(self) -> u32 {
        self.0 / crate::BLOCKS_PER_TILE as u32
    }

    /// Index of this block within its tile.
    #[inline]
    pub fn within_tile(self) -> u32 {
        self.0 % crate::BLOCKS_PER_TILE as u32
    }
}

/// Row-parallel arithmetic operations executed bit-serially with NOR
/// sequences inside a block (§2.3). Operands and destination are 32-bit
/// word columns; the operation applies to every row in the selected range
/// simultaneously — that is the PIM's parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// `dst ← a + b`
    Add,
    /// `dst ← a − b`
    Sub,
    /// `dst ← a × b`
    Mul,
    /// `dst ← a × b + dst` (fused accumulate; one extra add pass)
    Mac,
    /// `dst ← −a`
    Neg,
    /// `dst ← a` (column move inside the row)
    Mov,
}

impl AluOp {
    /// All ops, for exhaustive tests.
    pub const ALL: [AluOp; 6] =
        [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Mac, AluOp::Neg, AluOp::Mov];
}

/// One Wave-PIM instruction.
///
/// Rows are block-relative (0..1024); `offset`/`dst`/`a`/`b` are 32-bit
/// word columns within a row (0..32); `words` counts 32-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Load `words` words at `(row, offset)` from memristor cells into the
    /// block's row buffer (the paper's `I₀` in Fig. 3).
    Read { block: BlockId, row: u16, offset: u8, words: u8 },
    /// Store from the row buffer into cells (the paper's `I₄`).
    Write { block: BlockId, row: u16, offset: u8, words: u8 },
    /// Replicate the row-buffer contents into every row of
    /// `dst_first..=dst_last` at `offset` — the constants broadcast of the
    /// Fig. 5 timeline ("Broadcast materials/constants").
    Broadcast { block: BlockId, dst_first: u16, dst_last: u16, offset: u8, words: u8 },
    /// Inter-block copy of `words` words routed by the interconnect (the
    /// memcpy instructions `I₁, I₂, I₃` of Fig. 3, fused: the simulator
    /// expands the route).
    Copy { src: BlockId, dst: BlockId, words: u16 },
    /// Row-parallel bit-serial arithmetic over rows
    /// `first_row..=last_row`: `dst ← a op b` in every selected row at
    /// once.
    Arith { block: BlockId, op: AluOp, first_row: u16, last_row: u16, dst: u8, a: u8, b: u8 },
    /// Look-up-table access (Fig. 4 / Algorithm 1). `row` is the
    /// chip-global row address holding the index at `offset_s`; the value
    /// fetched from `lut_block` lands at `offset_d` of the same row.
    Lut { row: u32, offset_s: u8, lut_block: u32, offset_d: u8 },
    /// DMA `bytes` from off-chip HBM2 into the block (batching, §6.1).
    LoadOffchip { block: BlockId, bytes: u32 },
    /// DMA `bytes` from the block out to HBM2.
    StoreOffchip { block: BlockId, bytes: u32 },
    /// Barrier: all preceding instructions complete before any following
    /// one issues.
    Sync,
}

impl Instr {
    /// The 7-bit opcode (bits 63:57 of the encoding).
    pub fn opcode(&self) -> u8 {
        match self {
            Instr::Read { .. } => 0x01,
            Instr::Write { .. } => 0x02,
            Instr::Broadcast { .. } => 0x03,
            Instr::Copy { .. } => 0x04,
            Instr::Arith { .. } => 0x05,
            Instr::Lut { .. } => 0x06,
            Instr::LoadOffchip { .. } => 0x07,
            Instr::StoreOffchip { .. } => 0x08,
            Instr::Sync => 0x00,
        }
    }

    /// Whether this instruction uses the inter-block interconnect.
    pub fn uses_interconnect(&self) -> bool {
        matches!(self, Instr::Copy { .. } | Instr::Lut { .. })
    }

    /// Whether this instruction crosses the chip boundary (HBM2 traffic).
    pub fn uses_offchip(&self) -> bool {
        matches!(self, Instr::LoadOffchip { .. } | Instr::StoreOffchip { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_tile_decomposition() {
        let b = BlockId(256 * 3 + 17);
        assert_eq!(b.tile(), 3);
        assert_eq!(b.within_tile(), 17);
        assert_eq!(BlockId(0).tile(), 0);
        assert_eq!(BlockId(255).tile(), 0);
        assert_eq!(BlockId(256).tile(), 1);
    }

    #[test]
    fn opcodes_are_unique() {
        let instrs = [
            Instr::Sync,
            Instr::Read { block: BlockId(0), row: 0, offset: 0, words: 1 },
            Instr::Write { block: BlockId(0), row: 0, offset: 0, words: 1 },
            Instr::Broadcast { block: BlockId(0), dst_first: 0, dst_last: 1, offset: 0, words: 1 },
            Instr::Copy { src: BlockId(0), dst: BlockId(1), words: 1 },
            Instr::Arith {
                block: BlockId(0),
                op: AluOp::Add,
                first_row: 0,
                last_row: 1,
                dst: 0,
                a: 1,
                b: 2,
            },
            Instr::Lut { row: 0, offset_s: 0, lut_block: 0, offset_d: 0 },
            Instr::LoadOffchip { block: BlockId(0), bytes: 4 },
            Instr::StoreOffchip { block: BlockId(0), bytes: 4 },
        ];
        let mut seen = std::collections::HashSet::new();
        for i in &instrs {
            assert!(seen.insert(i.opcode()), "duplicate opcode for {i:?}");
        }
    }

    #[test]
    fn interconnect_and_offchip_classification() {
        assert!(Instr::Copy { src: BlockId(0), dst: BlockId(1), words: 1 }.uses_interconnect());
        assert!(Instr::Lut { row: 0, offset_s: 0, lut_block: 0, offset_d: 0 }.uses_interconnect());
        assert!(!Instr::Sync.uses_interconnect());
        assert!(Instr::LoadOffchip { block: BlockId(0), bytes: 1 }.uses_offchip());
        assert!(!Instr::Read { block: BlockId(0), row: 0, offset: 0, words: 1 }.uses_offchip());
    }
}
