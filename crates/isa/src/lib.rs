//! The Wave-PIM instruction set architecture.
//!
//! The paper describes an *ISA-based* digital PIM (§4.1): the host sends
//! instructions, an on-chip decoder turns them into micro-sequences for the
//! memory blocks, and the central controller routes inter-block transfers
//! over the H-tree or bus. This crate defines that ISA:
//!
//! * [`instr::Instr`] — the instruction forms (read/write/broadcast/
//!   inter-block copy/row-parallel arithmetic/off-chip DMA/LUT),
//! * [`encode`] — the 64-bit binary encoding, with the look-up-table
//!   instruction laid out exactly as Fig. 4 of the paper
//!   (`opcode[63:57] | RowID[56:31] | Offset_S[30:26] |
//!   LUT Block ID[25:5] | Offset_D[4:0]`),
//! * [`lut`] — the Algorithm 1 execution procedure that expands one LUT
//!   instruction into its two reads and one write,
//! * [`stream`] — instruction streams with class-wise statistics, the
//!   interchange format between the Wave-PIM compiler and the PIM
//!   simulator,
//! * [`program`] — binary program images (the form a host driver would
//!   DMA to the chip's instruction decoder).

pub mod disasm;
pub mod encode;
pub mod instr;
pub mod lut;
pub mod program;
pub mod stream;

pub use encode::{decode, encode, DecodeError};
pub use instr::{AluOp, BlockId, Instr};
pub use stream::{fnv1a, InstrStream, StreamStats, FNV_OFFSET};

/// Rows per memory block (the paper's 1K×1K crossbar, Table 3).
pub const BLOCK_ROWS: usize = 1024;
/// Bits per row.
pub const ROW_BITS: usize = 1024;
/// 32-bit words per row (`1024 / 32`; the paper's Fig. 4 commentary:
/// "memory block size is 1024×1024, and the data precision is 32-bit, so
/// only 5 bits are needed to define the offset").
pub const WORDS_PER_ROW: usize = ROW_BITS / 32;
/// Bytes of one memory block (1 Mib = 128 KiB).
pub const BLOCK_BYTES: usize = BLOCK_ROWS * ROW_BITS / 8;
/// Blocks per tile (Table 3: `num_block` = 256, 32 MB tiles).
pub const BLOCKS_PER_TILE: usize = 256;
