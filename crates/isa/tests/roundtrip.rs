//! Property-based encode/decode round-trip tests for the PIM ISA.

use pim_isa::{decode, encode, AluOp, BlockId, Instr};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = BlockId> {
    (0u32..=BlockId::MAX).prop_map(BlockId)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Mac),
        Just(AluOp::Neg),
        Just(AluOp::Mov),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Sync),
        (arb_block(), 0u16..1024, 0u8..32, 0u8..=32)
            .prop_map(|(block, row, offset, words)| Instr::Read { block, row, offset, words }),
        (arb_block(), 0u16..1024, 0u8..32, 0u8..=32)
            .prop_map(|(block, row, offset, words)| Instr::Write { block, row, offset, words }),
        (arb_block(), 0u16..1024, 0u16..1024, 0u8..32, 0u8..=32).prop_map(
            |(block, dst_first, dst_last, offset, words)| Instr::Broadcast {
                block,
                dst_first,
                dst_last,
                offset,
                words
            }
        ),
        (arb_block(), arb_block(), any::<u16>()).prop_map(|(src, dst, words)| Instr::Copy {
            src,
            dst,
            words
        }),
        (arb_block(), arb_alu(), 0u16..1024, 0u16..1024, 0u8..32, 0u8..32, 0u8..32).prop_map(
            |(block, op, first_row, last_row, dst, a, b)| Instr::Arith {
                block,
                op,
                first_row,
                last_row,
                dst,
                a,
                b
            }
        ),
        (0u32..(1 << 26), 0u8..32, 0u32..(1 << 21), 0u8..32).prop_map(
            |(row, offset_s, lut_block, offset_d)| Instr::Lut {
                row,
                offset_s,
                lut_block,
                offset_d
            }
        ),
        (arb_block(), any::<u32>()).prop_map(|(block, bytes)| Instr::LoadOffchip { block, bytes }),
        (arb_block(), any::<u32>()).prop_map(|(block, bytes)| Instr::StoreOffchip { block, bytes }),
    ]
}

proptest! {
    /// Every instruction encodes to 64 bits and decodes back identically.
    #[test]
    fn encode_decode_round_trip(instr in arb_instr()) {
        let word = encode(&instr);
        let back = decode(word).expect("valid encoding must decode");
        prop_assert_eq!(back, instr);
    }

    /// The opcode field is stable under encoding.
    #[test]
    fn opcode_survives_encoding(instr in arb_instr()) {
        let word = encode(&instr);
        prop_assert_eq!(((word >> 57) & 0x7F) as u8, instr.opcode());
    }

    /// Distinct instructions get distinct encodings (encode is injective
    /// over the generated domain).
    #[test]
    fn encoding_is_injective(a in arb_instr(), b in arb_instr()) {
        if a != b {
            prop_assert_ne!(encode(&a), encode(&b));
        }
    }
}
