//! Property sweeps of the on-PIM sqrt/reciprocal sequences against
//! correctly rounded references, asserting the documented ULP bound
//! over denormal-adjacent, boundary, and random operands.

use pim_math::eval;
use pim_math::table::{self, OPERAND_HI, OPERAND_LO, TABLE_ENTRIES};
use pim_math::ulp::{ulp_error, ULP_BOUND};
use pim_math::ITERS_PER_STAGE;
use proptest::prelude::*;

fn assert_within_bound(x: f64) {
    let s = eval::sqrt_eval(x, ITERS_PER_STAGE).expect("in-range operand");
    let r = eval::recip_eval(x, ITERS_PER_STAGE).expect("in-range operand");
    let se = ulp_error(s, x.sqrt());
    let re = ulp_error(r, 1.0 / x);
    assert!(se <= ULP_BOUND, "sqrt({x}): {se} f32 ULPs exceeds {ULP_BOUND}");
    assert!(re <= ULP_BOUND, "recip({x}): {re} f32 ULPs exceeds {ULP_BOUND}");
}

proptest! {
    #[test]
    fn random_operands_stay_within_the_ulp_bound(x in OPERAND_LO..OPERAND_HI) {
        assert_within_bound(x);
    }

    #[test]
    fn table_bin_edges_stay_within_the_ulp_bound(i in 0usize..TABLE_ENTRIES - 1) {
        // Bin midpoints are where the seed error peaks.
        let mid = (table::abscissa(i) + table::abscissa(i + 1)) * 0.5;
        assert_within_bound(mid.clamp(OPERAND_LO, OPERAND_HI));
    }

    #[test]
    fn low_end_neighborhood_stays_within_the_ulp_bound(k in 0u32..2048) {
        // The worst relative seed error sits just above OPERAND_LO;
        // walk the first bins densely.
        let x = OPERAND_LO + k as f64 * (1.0 / table::index_scale()) / 3.0;
        assert_within_bound(x.min(OPERAND_HI));
    }

    #[test]
    fn out_of_range_operands_are_always_refused(x in prop_oneof![
        -1e3..0.0,
        0.0..OPERAND_LO * 0.999,
        OPERAND_HI * 1.001..1e4,
    ]) {
        prop_assert!(eval::sqrt_eval(x, ITERS_PER_STAGE).is_none());
        prop_assert!(eval::recip_eval(x, ITERS_PER_STAGE).is_none());
    }
}

#[test]
fn boundary_and_denormal_adjacent_operands_stay_within_the_bound() {
    // Range boundaries, exact table abscissae, the values straddling
    // f32-denormal seed territory, and ULP-adjacent neighbors of the
    // bounds.
    let eps = f64::EPSILON;
    let cases = [
        OPERAND_LO,
        OPERAND_LO * (1.0 + eps),
        OPERAND_LO + 1.0 / table::index_scale(),
        1.0 - eps,
        1.0,
        1.0 + eps,
        table::abscissa(1),
        table::abscissa(TABLE_ENTRIES / 2),
        table::abscissa(TABLE_ENTRIES - 2),
        OPERAND_HI * (1.0 - eps),
        OPERAND_HI,
    ];
    for x in cases {
        assert_within_bound(x);
    }
}

#[test]
fn full_range_dense_sweep_reports_max_ulp_below_one() {
    // A deterministic dense sweep (8 probes per table bin across the
    // full range) — the strongest statement: measured worst case is
    // far inside the documented bound.
    let mut max_sqrt: f64 = 0.0;
    let mut max_recip: f64 = 0.0;
    let probes = 8 * TABLE_ENTRIES;
    for k in 0..=probes {
        let x = OPERAND_LO + (OPERAND_HI - OPERAND_LO) * k as f64 / probes as f64;
        let s = eval::sqrt_eval(x, ITERS_PER_STAGE).unwrap();
        let r = eval::recip_eval(x, ITERS_PER_STAGE).unwrap();
        max_sqrt = max_sqrt.max(ulp_error(s, x.sqrt()));
        max_recip = max_recip.max(ulp_error(r, 1.0 / x));
    }
    assert!(max_sqrt < 1.0, "max sqrt error {max_sqrt} f32 ULPs");
    assert!(max_recip < 1.0, "max recip error {max_recip} f32 ULPs");
}
