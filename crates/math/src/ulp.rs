//! ULP-level accuracy measurement against correctly rounded references.
//!
//! The sequences store 32-bit table words and target f32-level accuracy
//! (the paper's LUT entries are 32-bit, §4.3), so errors are measured
//! in **f32 ULPs**: `|approx − exact| / ulp_f32(exact)`.

/// Documented accuracy bound for the LUT + Newton sequences over the
/// full operand range, in f32 ULPs. Measured worst case is well below
/// 1; the bound leaves headroom for the f32 rounding of a consumer.
pub const ULP_BOUND: f64 = 4.0;

/// Documented bound on cluster-vs-native state divergence when math
/// runs on-PIM (the default host path stays ≤ 1e-12). The first stage
/// sees 2-step-Newton coefficients (relative error ≈ 4e-9 worst case);
/// subsequent stages refine in place toward exactness. 1e-6 bounds the
/// propagated effect with a wide margin; `math_bench` reports the
/// measured value (≈ 1e-9).
pub const CLUSTER_MATH_BOUND: f64 = 1e-6;

/// The spacing of f32 values at `|x|` — one unit in the last place —
/// expressed in f64.
pub fn ulp_f32(x: f64) -> f64 {
    let v = (x.abs() as f32).max(f32::MIN_POSITIVE);
    let up = f32::from_bits(v.to_bits() + 1);
    (up - v) as f64
}

/// Error of `approx` against `exact` in f32 ULPs.
pub fn ulp_error(approx: f64, exact: f64) -> f64 {
    (approx - exact).abs() / ulp_f32(exact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_spacing_matches_the_f32_grid() {
        // At 1.0 an f32 ULP is 2^-23.
        assert_eq!(ulp_f32(1.0), (2.0f64).powi(-23));
        // Doubling the magnitude doubles the spacing (same binade ×2).
        assert_eq!(ulp_f32(2.0), 2.0 * ulp_f32(1.0));
        // Tiny arguments clamp to the smallest normal's spacing.
        assert!(ulp_f32(0.0) > 0.0);
    }

    #[test]
    fn exact_values_have_zero_ulp_error() {
        assert_eq!(ulp_error(2.0, 2.0), 0.0);
        assert!(ulp_error(1.0 + (2.0f64).powi(-23), 1.0) > 0.99);
    }
}
