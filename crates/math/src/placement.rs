//! The per-op host-vs-PIM placement cost model.
//!
//! Host offload costs `HostModel::preprocess` cycles **per element**
//! plus the per-stage DMA that refreshes the staged constants, so it
//! scales linearly with the shard size. The on-PIM sequence is pure
//! row-parallel intra-block arithmetic: every element block runs it
//! concurrently, so its per-stage latency is that of *one* element's
//! fragment regardless of shard size. The crossover sits near 1.3K
//! elements per chip with the default parameters; [`CostModel::resolve`]
//! finds it from the chip's own timing constants rather than a tuned
//! threshold, and falls back to the host for any op whose operands
//! leave the table's supported range.

use pim_isa::{BlockId, Instr, InstrStream};
use pim_sim::host::HostModel;
use pim_sim::params;

use crate::seq::{MathSite, RecipDest, SqrtDest};
use crate::table;

/// Where one transcendental op-site executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Host CPU preprocess + constants-refresh DMA (the seed behavior).
    Host,
    /// LUT-seeded Newton sequence inside the element blocks.
    OnPim,
}

/// Per-op placement for the two transcendentals of the wave kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MathPlacement {
    pub sqrt: Placement,
    pub reciprocal: Placement,
}

impl MathPlacement {
    pub fn all_host() -> Self {
        Self { sqrt: Placement::Host, reciprocal: Placement::Host }
    }

    pub fn all_onpim() -> Self {
        Self { sqrt: Placement::OnPim, reciprocal: Placement::OnPim }
    }

    pub fn any_onpim(&self) -> bool {
        self.sqrt == Placement::OnPim || self.reciprocal == Placement::OnPim
    }

    pub fn any_host(&self) -> bool {
        self.sqrt == Placement::Host || self.reciprocal == Placement::Host
    }

    /// Nonzero discriminant folded into program-cache content keys so
    /// differently placed programs never collide (the legacy no-math
    /// path contributes nothing, keeping its keys bit-identical).
    pub fn key(&self) -> u64 {
        let mut k = 4u64;
        if self.sqrt == Placement::OnPim {
            k |= 1;
        }
        if self.reciprocal == Placement::OnPim {
            k |= 2;
        }
        k
    }
}

/// How the runtime treats transcendentals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MathMode {
    /// Seed behavior: host-exact constants, no per-stage charge. The
    /// default — bit-identical to the system before this subsystem.
    #[default]
    Off,
    /// Charge the per-stage host preprocess + constants refresh the
    /// analytic model (Fig. 13's "CPU Host: sqrt / inverse" lane)
    /// always priced — the measured "before" of `math_bench`.
    Host,
    /// Force every supported op onto the PIM sequence.
    OnPim,
    /// Let [`CostModel::resolve`] choose per op from the chip params.
    Auto,
}

/// Config switch carried by the compilers and the cluster runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MathConfig {
    pub mode: MathMode,
}

impl MathConfig {
    pub fn off() -> Self {
        Self { mode: MathMode::Off }
    }

    pub fn host() -> Self {
        Self { mode: MathMode::Host }
    }

    pub fn on_pim() -> Self {
        Self { mode: MathMode::OnPim }
    }

    pub fn auto() -> Self {
        Self { mode: MathMode::Auto }
    }
}

/// A latency/energy pair for one per-stage alternative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    pub seconds: f64,
    pub joules: f64,
}

impl OpCost {
    pub const ZERO: OpCost = OpCost { seconds: 0.0, joules: 0.0 };

    fn add(self, o: OpCost) -> OpCost {
        OpCost { seconds: self.seconds + o.seconds, joules: self.joules + o.joules }
    }
}

/// One shard's math op-sites, as the compiler sees them.
#[derive(Debug, Clone, Copy)]
pub struct SiteParams {
    /// Resident elements on the chip.
    pub elems: usize,
    /// Host sqrt calls per element per stage (from the op counter).
    pub sqrts_per_elem: u64,
    /// Host divisions per element per stage.
    pub divs_per_elem: u64,
    /// (min, max) operand of the sqrt sites (κρ for acoustic).
    pub sqrt_operands: (f64, f64),
    /// (min, max) operand of the reciprocal sites (ρ for acoustic).
    pub recip_operands: (f64, f64),
}

impl SiteParams {
    pub fn has_work(&self) -> bool {
        self.elems > 0 && (self.sqrts_per_elem > 0 || self.divs_per_elem > 0)
    }

    pub fn sqrt_supported(&self) -> bool {
        let (lo, hi) = self.sqrt_operands;
        self.sqrts_per_elem > 0 && lo <= hi && table::supported(lo) && table::supported(hi)
    }

    pub fn recip_supported(&self) -> bool {
        let (lo, hi) = self.recip_operands;
        self.divs_per_elem > 0 && lo <= hi && table::supported(lo) && table::supported(hi)
    }
}

/// The resolved decision for one shard.
#[derive(Debug, Clone, Copy)]
pub struct MathDecision {
    /// `None` means legacy behavior (mode Off, or no math work at all).
    pub placement: Option<MathPlacement>,
    /// Per-stage cost with everything on the host.
    pub host_stage: OpCost,
    /// Per-stage cost under the chosen placement.
    pub chosen_stage: OpCost,
    pub sqrt_supported: bool,
    pub recip_supported: bool,
}

/// Prices the two alternatives from the chip's timing/energy params.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    pub host: HostModel,
}

impl CostModel {
    /// Staged constants the host refreshes per element for its ops:
    /// one word for √(κρ), two for 1/ρ and its `−jac/ρ` product.
    fn refresh_bytes(p: MathPlacement, elems: usize) -> u64 {
        let mut words = 0u64;
        if p.sqrt == Placement::Host {
            words += 1;
        }
        if p.reciprocal == Placement::Host {
            words += 2;
        }
        words * 8 * elems as u64
    }

    /// Per-stage host cost of the ops `p` leaves on the host.
    pub fn host_stage_cost(&self, p: MathPlacement, site: &SiteParams) -> OpCost {
        let sqrts =
            if p.sqrt == Placement::Host { site.sqrts_per_elem * site.elems as u64 } else { 0 };
        let divs = if p.reciprocal == Placement::Host {
            site.divs_per_elem * site.elems as u64
        } else {
            0
        };
        if sqrts == 0 && divs == 0 {
            return OpCost::ZERO;
        }
        let (secs, joules) = self.host.preprocess(sqrts, divs);
        let bytes = Self::refresh_bytes(p, site.elems) as f64;
        OpCost {
            seconds: secs + bytes / params::OFFCHIP_BANDWIDTH,
            joules: joules + bytes * (params::OFFCHIP_POWER / params::OFFCHIP_BANDWIDTH),
        }
    }

    /// Per-stage cost of the on-PIM fragment `p` selects: the latency of
    /// one element's fragment (fragments overlap block-parallel), the
    /// energy of all of them.
    pub fn onpim_stage_cost(&self, p: MathPlacement, site: &SiteParams) -> OpCost {
        if !p.any_onpim() {
            return OpCost::ZERO;
        }
        let probe = MathSite { block: BlockId(0), row: 514, aux_row: 515, math_block: 1 };
        let mut s = InstrStream::new();
        probe.emit_stage(
            &mut s,
            p,
            (p.sqrt == Placement::OnPim).then_some(SqrtDest { col: 3 }),
            (p.reciprocal == Placement::OnPim).then_some(RecipDest {
                inv_col: 7,
                neg_jac_col: 4,
                neg_col: 1,
            }),
        );
        let mut c = OpCost::ZERO;
        for i in s.instrs() {
            let (secs, joules_per_elem) = match *i {
                Instr::Arith { op, first_row, last_row, .. } => {
                    let rows = (last_row - first_row + 1) as u64;
                    (params::nor_seconds(params::alu_cycles(op)), params::alu_energy(op, rows))
                }
                Instr::Read { .. } => (params::T_SEARCH, params::E_SEARCH),
                Instr::Write { .. } => (2.0 * params::T_SEARCH, params::E_SEARCH),
                _ => (0.0, 0.0),
            };
            c.seconds += secs;
            c.joules += joules_per_elem * site.elems as f64;
        }
        c
    }

    /// Total per-stage cost of a placement: host remainder + fragment.
    pub fn stage_cost(&self, p: MathPlacement, site: &SiteParams) -> OpCost {
        self.host_stage_cost(p, site).add(self.onpim_stage_cost(p, site))
    }

    /// Resolves `mode` for one shard's op-sites.
    pub fn resolve(&self, mode: MathMode, site: &SiteParams) -> MathDecision {
        let sqrt_supported = site.sqrt_supported();
        let recip_supported = site.recip_supported();
        let host_stage = self.host_stage_cost(MathPlacement::all_host(), site);
        let pick = |p: MathPlacement| MathDecision {
            placement: Some(p),
            host_stage,
            chosen_stage: self.stage_cost(p, site),
            sqrt_supported,
            recip_supported,
        };
        if mode == MathMode::Off || !site.has_work() {
            return MathDecision {
                placement: None,
                host_stage,
                chosen_stage: OpCost::ZERO,
                sqrt_supported,
                recip_supported,
            };
        }
        match mode {
            MathMode::Off => unreachable!("handled above"),
            MathMode::Host => pick(MathPlacement::all_host()),
            MathMode::OnPim => pick(MathPlacement {
                sqrt: if sqrt_supported { Placement::OnPim } else { Placement::Host },
                reciprocal: if recip_supported { Placement::OnPim } else { Placement::Host },
            }),
            MathMode::Auto => {
                let mut best = MathPlacement::all_host();
                let mut best_cost = self.stage_cost(best, site).seconds;
                for sq in [Placement::Host, Placement::OnPim] {
                    for rc in [Placement::Host, Placement::OnPim] {
                        if (sq == Placement::OnPim && !sqrt_supported)
                            || (rc == Placement::OnPim && !recip_supported)
                        {
                            continue;
                        }
                        let p = MathPlacement { sqrt: sq, reciprocal: rc };
                        let cost = self.stage_cost(p, site).seconds;
                        // Strict improvement required: ties keep the
                        // host (the conservative default).
                        if cost < best_cost {
                            best = p;
                            best_cost = cost;
                        }
                    }
                }
                pick(best)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(elems: usize) -> SiteParams {
        SiteParams {
            elems,
            sqrts_per_elem: 1,
            divs_per_elem: 1,
            sqrt_operands: (1.0, 4.0),
            recip_operands: (0.8, 1.2),
        }
    }

    #[test]
    fn host_cost_is_linear_and_pim_cost_is_flat_in_elements() {
        let m = CostModel::default();
        let p = MathPlacement::all_onpim();
        let h1 = m.host_stage_cost(MathPlacement::all_host(), &site(1000));
        let h4 = m.host_stage_cost(MathPlacement::all_host(), &site(4000));
        assert!(h4.seconds > 3.9 * h1.seconds);
        let o1 = m.onpim_stage_cost(p, &site(1000));
        let o4 = m.onpim_stage_cost(p, &site(4000));
        assert_eq!(o1.seconds, o4.seconds, "row-parallel latency must not scale");
        assert!(o4.joules > o1.joules, "energy still scales with elements");
    }

    #[test]
    fn auto_crosses_over_from_host_to_pim_with_scale() {
        let m = CostModel::default();
        let small = m.resolve(MathMode::Auto, &site(64));
        assert_eq!(small.placement, Some(MathPlacement::all_host()), "tiny shard stays on host");
        let large = m.resolve(MathMode::Auto, &site(8192));
        assert_eq!(large.placement, Some(MathPlacement::all_onpim()), "large shard moves on-PIM");
        assert!(large.chosen_stage.seconds < large.host_stage.seconds);
        assert!(large.chosen_stage.joules < large.host_stage.joules);
    }

    #[test]
    fn out_of_range_operands_pin_an_op_to_the_host() {
        let m = CostModel::default();
        let mut s = site(8192);
        s.sqrt_operands = (0.001, 4.0); // below OPERAND_LO
        let d = m.resolve(MathMode::OnPim, &s);
        let p = d.placement.unwrap();
        assert_eq!(p.sqrt, Placement::Host);
        assert_eq!(p.reciprocal, Placement::OnPim);
        assert!(!d.sqrt_supported && d.recip_supported);
    }

    #[test]
    fn off_mode_and_central_flux_produce_no_placement() {
        let m = CostModel::default();
        assert!(m.resolve(MathMode::Off, &site(4096)).placement.is_none());
        let central = SiteParams { sqrts_per_elem: 0, divs_per_elem: 0, ..site(4096) };
        assert!(m.resolve(MathMode::Auto, &central).placement.is_none());
    }

    #[test]
    fn placement_keys_are_distinct_and_nonzero() {
        let mut keys = std::collections::HashSet::new();
        for sq in [Placement::Host, Placement::OnPim] {
            for rc in [Placement::Host, Placement::OnPim] {
                let k = MathPlacement { sqrt: sq, reciprocal: rc }.key();
                assert!(k != 0);
                assert!(keys.insert(k));
            }
        }
    }
}
