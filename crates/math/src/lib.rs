//! # pim-math — on-PIM fixed-point transcendentals
//!
//! Every RK stage of the seed system escaped to the host CPU for the
//! sqrt/inverse preprocessing that feeds the Riemann flux (`HostModel`,
//! the "CPU Host: sqrt / inverse" lane of Fig. 13). This crate keeps
//! those operations inside the chip, TransPimLib-style:
//!
//! 1. **Range reduction**: operands are mapped onto a documented fixed
//!    range `[OPERAND_LO, OPERAND_HI]` by the affine index transform
//!    `idx = x·scale + bias` — two row-parallel ALU ops. Operands
//!    outside the range stay on the host (the placement model's range
//!    guard), so the table never aliases.
//! 2. **LUT seed**: one `Instr::Lut` (Fig. 4 / Algorithm 1) fetches a
//!    32-bit `1/√x` seed from a generated table that fills one reserved
//!    memory block (32K entries, f32-quantized — the "fixed-point" store
//!    of §4.3's 32-bit table words).
//! 3. **Newton refinement**: `ITERS_PER_STAGE` Newton–Raphson steps
//!    `r ← r·(3/2 − x/2·r²)` built from the existing bit-serial
//!    add/sub/mul ops refine the seed each stage. Both transcendentals
//!    ride the *same* iteration: `√x = x·r` and `1/x = r²`, so the two
//!    op lanes fuse into one row-parallel instruction pair per step.
//!
//! The [`placement`] module prices host offload against the on-PIM
//! sequence per op-site from the chip's timing/energy parameters and
//! chooses a [`MathPlacement`] per operation — the host wins at small
//! element counts (its per-element cost is tiny but linear), the PIM
//! sequence wins at scale (row-parallel: its latency is independent of
//! the element count).
//!
//! [`eval`] holds exact functional mirrors of the emitted sequences;
//! the property tests and the `math_bench` ULP study sweep them over
//! the full operand range against correctly rounded references.

pub mod eval;
pub mod placement;
pub mod seq;
pub mod table;
pub mod ulp;

pub use placement::{
    CostModel, MathConfig, MathDecision, MathMode, MathPlacement, OpCost, Placement, SiteParams,
};
pub use seq::{MathSite, RecipDest, SqrtDest, ITERS_PER_STAGE};
pub use table::{OPERAND_HI, OPERAND_LO, TABLE_ENTRIES};
pub use ulp::{CLUSTER_MATH_BOUND, ULP_BOUND};
