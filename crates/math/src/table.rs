//! Seed-table generation and the affine index transform.
//!
//! One reserved memory block holds a full [`LutTable`] of `1/√x` seeds
//! over the supported operand range. Linear spacing keeps the on-chip
//! index computation to one multiply and one add (range reduction); the
//! worst-case seed error sits at the low end of the range and is wiped
//! out by the Newton refinement (§ DESIGN.md 11).

use pim_isa::lut::LutTable;

/// Entries in the seed table — exactly one 1 Mib block (32K × 32 bit).
pub const TABLE_ENTRIES: usize = LutTable::CAPACITY;

/// Smallest supported operand (1/16). Below this the linear table's
/// relative seed error grows past what two Newton steps repair.
pub const OPERAND_LO: f64 = 0.0625;

/// Largest supported operand.
pub const OPERAND_HI: f64 = 16.0;

/// Index scale of the affine range reduction `idx = x·scale + bias`.
pub fn index_scale() -> f64 {
    (TABLE_ENTRIES as f64 - 1.0) / (OPERAND_HI - OPERAND_LO)
}

/// Index bias of the affine range reduction.
pub fn index_bias() -> f64 {
    -OPERAND_LO * index_scale()
}

/// Whether `x` lies in the range the table serves. Out-of-range
/// operands must stay on the host — the placement model's range guard.
pub fn supported(x: f64) -> bool {
    x.is_finite() && (OPERAND_LO..=OPERAND_HI).contains(&x)
}

/// The operand a table slot is centered on.
pub fn abscissa(i: usize) -> f64 {
    assert!(i < TABLE_ENTRIES);
    OPERAND_LO + i as f64 / index_scale()
}

/// The `1/√x` seed table, f32-quantized exactly as the 32-bit block
/// words store it. Both transcendentals share it: `√x = x·r`,
/// `1/x = r²`.
pub fn rsqrt_table() -> LutTable {
    let seeds: Vec<f32> = (0..TABLE_ENTRIES).map(|i| (1.0 / abscissa(i).sqrt()) as f32).collect();
    LutTable::from_f32(&seeds)
}

/// The seed value the chip reads for slot `i` — the f32 table entry
/// widened back to the f64 block word.
pub fn seed_at(i: usize) -> f64 {
    (1.0 / abscissa(i).sqrt()) as f32 as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_fills_exactly_one_block() {
        let t = rsqrt_table();
        // Every entry is a valid positive f32 seed.
        for i in [0usize, 1, TABLE_ENTRIES / 2, TABLE_ENTRIES - 1] {
            let v = t.get_f32(i as u32);
            assert!(v.is_finite() && v > 0.0);
            assert_eq!(v as f64, seed_at(i));
        }
    }

    #[test]
    fn range_reduction_hits_the_bounds_exactly() {
        let scale = index_scale();
        let bias = index_bias();
        assert_eq!((OPERAND_LO * scale + bias).round(), 0.0);
        assert_eq!((OPERAND_HI * scale + bias).round(), (TABLE_ENTRIES - 1) as f64);
        assert!(supported(OPERAND_LO) && supported(OPERAND_HI));
        assert!(!supported(OPERAND_LO * 0.5) && !supported(OPERAND_HI * 2.0));
        assert!(!supported(f64::NAN) && !supported(-1.0));
    }

    #[test]
    fn worst_seed_error_sits_at_the_low_end() {
        // Linear spacing: the relative seed error ≈ step/(4x) peaks at
        // OPERAND_LO and must stay below what two Newton steps repair
        // (≈ 2.2e-2 would still converge; we are orders better).
        let step = 1.0 / index_scale();
        let worst = step / (4.0 * OPERAND_LO);
        assert!(worst < 3e-3, "seed error {worst} too large for 2-step Newton");
    }
}
