//! Functional mirrors of the emitted instruction sequences.
//!
//! The chip executes block words as 64-bit values (see
//! `pim_sim::block`); these helpers replay the *exact* operation order
//! of [`crate::seq`] in plain `f64`, so a host-side caller (the elastic
//! and expanded compilers' setup-time placement, the ULP study, the
//! property tests) reproduces on-PIM results bit-for-bit.

use crate::table;

/// Newton refinement steps the per-stage sequence applies.
pub const DEFAULT_ITERS: u32 = crate::seq::ITERS_PER_STAGE;

/// Table index the range reduction produces for `x`, or `None` when the
/// operand leaves the supported range (the interpreter would surface an
/// out-of-range `Lut` as a diagnostic; the placement guard keeps such
/// sites on the host).
pub fn seed_index(x: f64) -> Option<usize> {
    // Mirrors the emitted ops: Mul by scale, Add bias, then the
    // interpreter's round-to-nearest in `Instr::Lut`.
    let idx = (x * table::index_scale() + table::index_bias()).round();
    if idx >= 0.0 && idx < table::TABLE_ENTRIES as f64 {
        Some(idx as usize)
    } else {
        None
    }
}

/// The f32-quantized `1/√x` seed the `Lut` fetch lands in the block.
pub fn rsqrt_seed(x: f64) -> Option<f64> {
    seed_index(x).map(table::seed_at)
}

/// `iters` Newton–Raphson steps `r ← r·(3/2 − x/2·r²)`, in the exact
/// operation order the emitted stream uses (`t = r·r; t = xh·t;
/// t = 3/2 − t; r = r·t` with `xh = x·0.5` precomputed at setup).
pub fn refine_rsqrt(x: f64, mut r: f64, iters: u32) -> f64 {
    let xh = x * 0.5;
    for _ in 0..iters {
        let mut t = r * r;
        t *= xh; // xh·t — IEEE multiplication commutes bit-exactly

        t = 1.5 - t;
        r *= t;
    }
    r
}

/// On-PIM `1/√x` after `iters` refinement steps.
pub fn rsqrt_eval(x: f64, iters: u32) -> Option<f64> {
    rsqrt_seed(x).map(|r| refine_rsqrt(x, r, iters))
}

/// On-PIM `√x` after `iters` refinement steps (`√x = x·r`, the final
/// single-row multiply of the sequence).
pub fn sqrt_eval(x: f64, iters: u32) -> Option<f64> {
    rsqrt_eval(x, iters).map(|r| x * r)
}

/// On-PIM `1/x` after `iters` refinement steps (`1/x = r²`, the fused
/// squaring that closes the sequence).
pub fn recip_eval(x: f64, iters: u32) -> Option<f64> {
    rsqrt_eval(x, iters).map(|r| r * r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{OPERAND_HI, OPERAND_LO};

    #[test]
    fn two_steps_reach_sub_ulp_accuracy_at_spot_checks() {
        for x in [OPERAND_LO, 0.1, 0.5, 1.0, 2.0, 3.7, 9.81, OPERAND_HI] {
            let s = sqrt_eval(x, 2).unwrap();
            let r = recip_eval(x, 2).unwrap();
            assert!((s - x.sqrt()).abs() / x.sqrt() < 1e-8, "sqrt({x}) = {s}");
            assert!((r - 1.0 / x).abs() * x < 1e-8, "recip({x}) = {r}");
        }
    }

    #[test]
    fn out_of_range_operands_are_refused() {
        assert!(seed_index(OPERAND_LO * 0.9).is_none());
        assert!(seed_index(OPERAND_HI * 1.1).is_none());
        assert!(seed_index(-1.0).is_none());
        assert!(sqrt_eval(0.0, 2).is_none());
    }

    #[test]
    fn refinement_is_monotone_in_iterations() {
        // More Newton steps never hurt: error is non-increasing.
        for x in [0.07f64, 0.9, 4.2, 15.5] {
            let exact = 1.0 / x.sqrt();
            let mut last = f64::INFINITY;
            for iters in 0..4 {
                let err = (rsqrt_eval(x, iters).unwrap() - exact).abs();
                assert!(err <= last + f64::EPSILON, "iters {iters} worsened {x}");
                last = err;
            }
        }
    }
}
