//! `InstrStream` fragment emitters for the on-PIM sequences.
//!
//! Layout: each element block runs the math on two staging rows — the
//! element's constants staging row (`row`, the sqrt lane) and the row
//! after it (`aux_row`, the reciprocal lane). Columns 25..31 are free
//! on both rows in the acoustic layout, and both lanes use the *same*
//! columns, so when both ops are PIM-placed every Newton step is one
//! row-parallel instruction covering both rows — the second
//! transcendental is nearly free.
//!
//! Per-element fragments:
//! * **setup** (once, at preload): range-reduce the raw operand into a
//!   table index (`Mul` scale, `Add` bias), fetch the `1/√x` seed with
//!   one `Instr::Lut` per lane, precompute `x/2`.
//! * **stage** (each RK stage): [`ITERS_PER_STAGE`] Newton steps refine
//!   the seed *in place* (later stages start from the previous stage's
//!   refined value and converge further), then the finalize multiplies
//!   write the staged constants the Volume/Flux kernels broadcast:
//!   `√x = x·r` on the sqrt lane, `1/x = r²` on the reciprocal lane.

use pim_isa::{AluOp, BlockId, Instr, InstrStream, BLOCK_ROWS};

use crate::placement::{MathPlacement, Placement};

/// Newton refinement steps per RK stage. Two steps take the worst-case
/// table seed (relative error ≈ 2e-3) to ≈ 4e-9, inside [`crate::ULP_BOUND`].
pub const ITERS_PER_STAGE: u32 = 2;

/// Shared column map of the two math lanes (free columns 25..31 of the
/// staging rows).
pub mod cols {
    /// The raw operand `x` (κρ on the sqrt lane, ρ on the reciprocal
    /// lane for the acoustic mapping).
    pub const RAW: u8 = 25;
    /// `x/2` after setup; holds the index *bias* at preload time (setup
    /// consumes it, then overwrites).
    pub const XH: u8 = 26;
    /// The refined `1/√x` iterate.
    pub const SEED: u8 = 27;
    /// Newton temporary; holds the index *scale* at preload time.
    pub const SCRATCH: u8 = 28;
    /// Constant 0.5.
    pub const HALF: u8 = 29;
    /// Constant 1.5.
    pub const THREE_HALVES: u8 = 30;
    /// Computed table index (input of the `Lut` fetch).
    pub const IDX: u8 = 31;
}

/// One element's math placement site.
#[derive(Debug, Clone, Copy)]
pub struct MathSite {
    /// The element's block.
    pub block: BlockId,
    /// The sqrt lane's row (the element-constants staging row).
    pub row: u16,
    /// The reciprocal lane's row (`row + 1` in the acoustic layout).
    pub aux_row: u16,
    /// Block id of the reserved seed-table block.
    pub math_block: u32,
}

/// Where the sqrt lane's finalize lands (`√x = x·r`).
#[derive(Debug, Clone, Copy)]
pub struct SqrtDest {
    /// Destination column on the sqrt lane's row.
    pub col: u8,
}

/// Where the reciprocal lane's finalize lands. `1/x` is written at
/// `(row, inv_col)` and the derived `(1/x)·neg_jac` product at
/// `(row, neg_col)` — the two staged constants the acoustic kernels
/// broadcast.
#[derive(Debug, Clone, Copy)]
pub struct RecipDest {
    pub inv_col: u8,
    /// Column of the pre-staged `−jac` multiplier on the main row.
    pub neg_jac_col: u8,
    /// Destination of the `(1/x)·neg_jac` product.
    pub neg_col: u8,
}

impl MathSite {
    fn lanes(&self, p: MathPlacement) -> (Option<u16>, Option<u16>) {
        let s = (p.sqrt == Placement::OnPim).then_some(self.row);
        let r = (p.reciprocal == Placement::OnPim).then_some(self.aux_row);
        (s, r)
    }

    /// The contiguous row range one fused arithmetic op covers.
    fn row_span(&self, p: MathPlacement) -> Option<(u16, u16)> {
        match self.lanes(p) {
            (Some(a), Some(b)) => Some((a.min(b), a.max(b))),
            (Some(a), None) | (None, Some(a)) => Some((a, a)),
            (None, None) => None,
        }
    }

    /// `(row, col, value)` triples the host must preload for the
    /// PIM-placed lanes: the raw operand, the range-reduction scale and
    /// bias, and the two Newton constants.
    pub fn staged_values(
        &self,
        p: MathPlacement,
        sqrt_operand: f64,
        recip_operand: f64,
    ) -> Vec<(u16, u8, f64)> {
        let mut out = Vec::new();
        let (sqrt_lane, recip_lane) = self.lanes(p);
        for (lane, x) in [(sqrt_lane, sqrt_operand), (recip_lane, recip_operand)] {
            let Some(row) = lane else { continue };
            debug_assert!(crate::table::supported(x), "unsupported operand {x} reached a PIM lane");
            out.push((row, cols::RAW, x));
            out.push((row, cols::XH, crate::table::index_bias()));
            out.push((row, cols::SCRATCH, crate::table::index_scale()));
            out.push((row, cols::HALF, 0.5));
            out.push((row, cols::THREE_HALVES, 1.5));
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn arith(&self, s: &mut InstrStream, first: u16, last: u16, op: AluOp, dst: u8, a: u8, b: u8) {
        s.push(Instr::Arith { block: self.block, op, first_row: first, last_row: last, dst, a, b });
    }

    /// The one-time seed fragment: range reduction, `Lut` seed fetch per
    /// lane, `x/2` precompute.
    pub fn emit_setup(&self, s: &mut InstrStream, p: MathPlacement) {
        let Some((first, last)) = self.row_span(p) else { return };
        // idx = x·scale + bias (scale/bias pre-staged in SCRATCH/XH).
        self.arith(s, first, last, AluOp::Mul, cols::IDX, cols::RAW, cols::SCRATCH);
        self.arith(s, first, last, AluOp::Add, cols::IDX, cols::IDX, cols::XH);
        let (sqrt_lane, recip_lane) = self.lanes(p);
        for row in [sqrt_lane, recip_lane].into_iter().flatten() {
            s.push(Instr::Lut {
                row: self.block.0 * BLOCK_ROWS as u32 + row as u32,
                offset_s: cols::IDX,
                lut_block: self.math_block,
                offset_d: cols::SEED,
            });
        }
        // xh = x·0.5 — overwrites the staged bias, which is now dead.
        self.arith(s, first, last, AluOp::Mul, cols::XH, cols::RAW, cols::HALF);
    }

    /// The per-stage refinement fragment. Entirely intra-block (no
    /// interconnect, no LUT serialization), so fragments for different
    /// elements overlap perfectly: the per-chip latency is that of one
    /// element regardless of the shard size.
    pub fn emit_stage(
        &self,
        s: &mut InstrStream,
        p: MathPlacement,
        sqrt_dest: Option<SqrtDest>,
        recip_dest: Option<RecipDest>,
    ) {
        let Some((first, last)) = self.row_span(p) else { return };
        for _ in 0..ITERS_PER_STAGE {
            // r ← r·(3/2 − xh·r²), fused across the active lanes.
            self.arith(s, first, last, AluOp::Mul, cols::SCRATCH, cols::SEED, cols::SEED);
            self.arith(s, first, last, AluOp::Mul, cols::SCRATCH, cols::XH, cols::SCRATCH);
            self.arith(
                s,
                first,
                last,
                AluOp::Sub,
                cols::SCRATCH,
                cols::THREE_HALVES,
                cols::SCRATCH,
            );
            self.arith(s, first, last, AluOp::Mul, cols::SEED, cols::SEED, cols::SCRATCH);
        }
        let (sqrt_lane, recip_lane) = self.lanes(p);
        if let (Some(row), Some(d)) = (sqrt_lane, sqrt_dest) {
            // √x = x·r on the sqrt lane only.
            self.arith(s, row, row, AluOp::Mul, d.col, cols::RAW, cols::SEED);
        }
        if let (Some(row), Some(d)) = (recip_lane, recip_dest) {
            // 1/x = r² on the reciprocal lane, then hop it to the main
            // staging row where the kernels' broadcasts read constants.
            self.arith(s, row, row, AluOp::Mul, cols::SCRATCH, cols::SEED, cols::SEED);
            s.push(Instr::Read { block: self.block, row, offset: cols::SCRATCH, words: 1 });
            s.push(Instr::Write { block: self.block, row: self.row, offset: d.inv_col, words: 1 });
            self.arith(s, self.row, self.row, AluOp::Mul, d.neg_col, d.inv_col, d.neg_jac_col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> MathSite {
        MathSite { block: BlockId(3), row: 514, aux_row: 515, math_block: 40 }
    }

    #[test]
    fn fused_placement_emits_row_pair_arithmetic() {
        let mut s = InstrStream::new();
        site().emit_stage(
            &mut s,
            MathPlacement::all_onpim(),
            Some(SqrtDest { col: 3 }),
            Some(RecipDest { inv_col: 7, neg_jac_col: 4, neg_col: 1 }),
        );
        let fused = s
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Arith { first_row: 514, last_row: 515, .. }))
            .count();
        // 2 Newton steps × 4 ops, all fused across the two lanes.
        assert_eq!(fused, 8);
    }

    #[test]
    fn single_op_placement_stays_on_one_row() {
        let mut s = InstrStream::new();
        let p = MathPlacement { sqrt: Placement::OnPim, reciprocal: Placement::Host };
        site().emit_stage(&mut s, p, Some(SqrtDest { col: 3 }), None);
        for i in s.instrs() {
            if let Instr::Arith { first_row, last_row, .. } = i {
                assert_eq!((*first_row, *last_row), (514, 514));
            }
        }
        // A host-only placement emits nothing at all.
        let mut empty = InstrStream::new();
        site().emit_stage(&mut empty, MathPlacement::all_host(), Some(SqrtDest { col: 3 }), None);
        assert!(empty.instrs().is_empty());
    }

    #[test]
    fn setup_emits_one_lut_per_active_lane() {
        let mut s = InstrStream::new();
        site().emit_setup(&mut s, MathPlacement::all_onpim());
        let luts: Vec<_> = s.instrs().iter().filter(|i| matches!(i, Instr::Lut { .. })).collect();
        assert_eq!(luts.len(), 2);
        if let Instr::Lut { row, offset_s, lut_block, offset_d } = luts[0] {
            assert_eq!(*row, 3 * BLOCK_ROWS as u32 + 514);
            assert_eq!(*offset_s, cols::IDX);
            assert_eq!(*lut_block, 40);
            assert_eq!(*offset_d, cols::SEED);
        }
    }

    #[test]
    fn staged_values_cover_only_active_lanes() {
        let p = MathPlacement { sqrt: Placement::Host, reciprocal: Placement::OnPim };
        let staged = site().staged_values(p, 2.0, 1.0);
        assert!(staged.iter().all(|&(row, _, _)| row == 515));
        assert_eq!(staged.len(), 5);
    }
}
