//! Structured hexahedral meshes for dG wave simulation.
//!
//! The Wave-PIM paper discretizes a cubic problem domain into uniform
//! hexahedral elements; *refinement level n* means `(2ⁿ)³` elements
//! (Table 1). This crate provides the mesh abstraction the solver and the
//! PIM mapper share:
//!
//! * [`HexMesh`] — a level-`n` structured mesh over a cube, with periodic or
//!   rigid-wall boundaries,
//! * [`Face`] — the six faces of an element (at most six neighbors, §6.1.2),
//! * [`geometry`] — the affine-element Jacobian constants of Table 1
//!   (`jacobian_det_domain`, `jacobian_inverse_domain`,
//!   `jacobian_det_boundary`, `jacobian_det_w_star`),
//! * slice decomposition along the y-axis, which is what the Flux batching
//!   scheme of §6.1.2 (Fig. 7) iterates over,
//! * [`partition`] — contiguous y-slice shards with halo face tables for
//!   the multi-chip cluster runtime (§6's "larger problem sizes" axis).

pub mod face;
pub mod geometry;
pub mod hexmesh;
pub mod partition;

pub use face::{Face, Neighbor};
pub use geometry::ElementGeometry;
pub use hexmesh::{Boundary, ElemId, HexMesh};
pub use partition::{HaloFace, Shard, SlicePartition};
