//! The structured hexahedral mesh.

use wavesim_numerics::Vec3;

use crate::face::{Face, Neighbor};

/// An element identifier: the lexicographic index `ix + n·iy + n²·iz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElemId(pub usize);

impl ElemId {
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Domain boundary treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Opposite faces of the domain are identified; every element has
    /// exactly six neighbors. Used for plane-wave convergence tests.
    Periodic,
    /// Rigid walls: faces on the domain boundary have no neighbor and the
    /// solver mirrors the state there.
    Wall,
}

/// A uniform structured mesh of `(2^level)³` hexahedral elements over the
/// cube `[0, extent]³`.
///
/// Refinement level `n` matches the paper's Table 1: "the problem domain is
/// discretized into `(2ⁿ)³` elements". Level 4 → 4,096 elements; level 5 →
/// 32,768 elements — the two sizes used by all six paper benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct HexMesh {
    level: u32,
    per_axis: usize,
    extent: f64,
    h: f64,
    boundary: Boundary,
}

impl HexMesh {
    /// Builds a refinement-level `level` mesh over `[0, 1]³`.
    pub fn refinement_level(level: u32, boundary: Boundary) -> Self {
        Self::with_extent(level, 1.0, boundary)
    }

    /// Builds a refinement-level `level` mesh over `[0, extent]³`.
    ///
    /// # Panics
    /// Panics if `extent` is not strictly positive or `level > 10` (more
    /// than a billion elements is certainly a caller bug).
    pub fn with_extent(level: u32, extent: f64, boundary: Boundary) -> Self {
        assert!(extent > 0.0, "domain extent must be positive");
        assert!(level <= 10, "refinement level {level} is unreasonably large");
        let per_axis = 1usize << level;
        Self { level, per_axis, extent, h: extent / per_axis as f64, boundary }
    }

    /// The refinement level.
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Elements per axis, `2^level`.
    #[inline]
    pub fn per_axis(&self) -> usize {
        self.per_axis
    }

    /// Total number of elements, `(2^level)³`.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.per_axis * self.per_axis * self.per_axis
    }

    /// Edge length of the cubic domain.
    #[inline]
    pub fn extent(&self) -> f64 {
        self.extent
    }

    /// Edge length of one element.
    #[inline]
    pub fn h(&self) -> f64 {
        self.h
    }

    /// The boundary treatment.
    #[inline]
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Iterator over all element ids in layout order.
    pub fn elements(&self) -> impl Iterator<Item = ElemId> {
        (0..self.num_elements()).map(ElemId)
    }

    /// Grid coordinates `(ix, iy, iz)` of an element.
    #[inline]
    pub fn elem_coords(&self, elem: ElemId) -> (usize, usize, usize) {
        let n = self.per_axis;
        debug_assert!(elem.0 < self.num_elements());
        (elem.0 % n, (elem.0 / n) % n, elem.0 / (n * n))
    }

    /// Element id from grid coordinates.
    #[inline]
    pub fn elem_id(&self, ix: usize, iy: usize, iz: usize) -> ElemId {
        let n = self.per_axis;
        debug_assert!(ix < n && iy < n && iz < n);
        ElemId(ix + n * (iy + n * iz))
    }

    /// Physical coordinates of the low corner of an element.
    #[inline]
    pub fn elem_origin(&self, elem: ElemId) -> Vec3 {
        let (ix, iy, iz) = self.elem_coords(elem);
        Vec3::new(ix as f64 * self.h, iy as f64 * self.h, iz as f64 * self.h)
    }

    /// Physical center of an element.
    #[inline]
    pub fn elem_center(&self, elem: ElemId) -> Vec3 {
        self.elem_origin(elem) + Vec3::new(0.5, 0.5, 0.5) * self.h
    }

    /// Maps a reference coordinate `r ∈ [-1, 1]³` inside an element to
    /// physical space.
    #[inline]
    pub fn to_physical(&self, elem: ElemId, r: Vec3) -> Vec3 {
        self.elem_origin(elem) + (r + Vec3::new(1.0, 1.0, 1.0)) * (0.5 * self.h)
    }

    /// What lies across `face` of `elem`.
    pub fn neighbor(&self, elem: ElemId, face: Face) -> Neighbor {
        let (ix, iy, iz) = self.elem_coords(elem);
        let n = self.per_axis;
        let step = |coord: usize, plus: bool| -> Option<usize> {
            if plus {
                if coord + 1 < n {
                    Some(coord + 1)
                } else {
                    match self.boundary {
                        Boundary::Periodic => Some(0),
                        Boundary::Wall => None,
                    }
                }
            } else if coord > 0 {
                Some(coord - 1)
            } else {
                match self.boundary {
                    Boundary::Periodic => Some(n - 1),
                    Boundary::Wall => None,
                }
            }
        };
        let coords = match face {
            Face::XMinus => step(ix, false).map(|x| (x, iy, iz)),
            Face::XPlus => step(ix, true).map(|x| (x, iy, iz)),
            Face::YMinus => step(iy, false).map(|y| (ix, y, iz)),
            Face::YPlus => step(iy, true).map(|y| (ix, y, iz)),
            Face::ZMinus => step(iz, false).map(|z| (ix, iy, z)),
            Face::ZPlus => step(iz, true).map(|z| (ix, iy, z)),
        };
        match coords {
            Some((x, y, z)) => Neighbor::Element(self.elem_id(x, y, z)),
            None => Neighbor::Boundary,
        }
    }

    /// The y-slice an element belongs to. The Flux batching scheme of the
    /// paper (§6.1.2, Fig. 7) partitions the model into slices along one
    /// axis; the inter-slice axis in the paper's walkthrough is y.
    #[inline]
    pub fn slice_of(&self, elem: ElemId) -> usize {
        self.elem_coords(elem).1
    }

    /// Number of y-slices, equal to `per_axis`.
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.per_axis
    }

    /// Elements of one y-slice, in layout order.
    pub fn slice_elements(&self, slice: usize) -> impl Iterator<Item = ElemId> + '_ {
        assert!(slice < self.per_axis, "slice index out of range");
        let n = self.per_axis;
        (0..n * n).map(move |t| self.elem_id(t % n, slice, t / n))
    }

    /// Number of elements per slice, `per_axis²`.
    #[inline]
    pub fn elements_per_slice(&self) -> usize {
        self.per_axis * self.per_axis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_level_element_counts() {
        // Table 1 of the paper: level n → (2^n)³ elements.
        assert_eq!(HexMesh::refinement_level(0, Boundary::Periodic).num_elements(), 1);
        assert_eq!(HexMesh::refinement_level(2, Boundary::Periodic).num_elements(), 64);
        assert_eq!(HexMesh::refinement_level(4, Boundary::Periodic).num_elements(), 4096);
        assert_eq!(HexMesh::refinement_level(5, Boundary::Periodic).num_elements(), 32768);
    }

    #[test]
    fn coords_round_trip() {
        let mesh = HexMesh::refinement_level(3, Boundary::Wall);
        for elem in mesh.elements() {
            let (x, y, z) = mesh.elem_coords(elem);
            assert_eq!(mesh.elem_id(x, y, z), elem);
        }
    }

    #[test]
    fn neighbor_is_symmetric() {
        for boundary in [Boundary::Periodic, Boundary::Wall] {
            let mesh = HexMesh::refinement_level(2, boundary);
            for elem in mesh.elements() {
                for face in Face::ALL {
                    if let Neighbor::Element(other) = mesh.neighbor(elem, face) {
                        assert_eq!(
                            mesh.neighbor(other, face.opposite()),
                            Neighbor::Element(elem),
                            "asymmetric neighbor across {face:?} of {elem:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn periodic_mesh_has_six_neighbors_everywhere() {
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        for elem in mesh.elements() {
            for face in Face::ALL {
                assert!(matches!(mesh.neighbor(elem, face), Neighbor::Element(_)));
            }
        }
    }

    #[test]
    fn periodic_wraps_to_far_side() {
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        let corner = mesh.elem_id(0, 0, 0);
        assert_eq!(mesh.neighbor(corner, Face::XMinus), Neighbor::Element(mesh.elem_id(3, 0, 0)));
        assert_eq!(mesh.neighbor(corner, Face::YMinus), Neighbor::Element(mesh.elem_id(0, 3, 0)));
        assert_eq!(mesh.neighbor(corner, Face::ZMinus), Neighbor::Element(mesh.elem_id(0, 0, 3)));
    }

    #[test]
    fn wall_mesh_boundary_faces() {
        let mesh = HexMesh::refinement_level(2, Boundary::Wall);
        let corner = mesh.elem_id(0, 0, 0);
        assert_eq!(mesh.neighbor(corner, Face::XMinus), Neighbor::Boundary);
        assert_eq!(mesh.neighbor(corner, Face::YMinus), Neighbor::Boundary);
        assert_eq!(mesh.neighbor(corner, Face::ZMinus), Neighbor::Boundary);
        assert!(matches!(mesh.neighbor(corner, Face::XPlus), Neighbor::Element(_)));
        // Interior element has all six neighbors.
        let inner = mesh.elem_id(1, 2, 1);
        for face in Face::ALL {
            assert!(matches!(mesh.neighbor(inner, face), Neighbor::Element(_)));
        }
    }

    #[test]
    fn boundary_face_count_matches_surface_area() {
        let mesh = HexMesh::refinement_level(3, Boundary::Wall);
        let n = mesh.per_axis();
        let mut boundary_faces = 0;
        for elem in mesh.elements() {
            for face in Face::ALL {
                if mesh.neighbor(elem, face) == Neighbor::Boundary {
                    boundary_faces += 1;
                }
            }
        }
        assert_eq!(boundary_faces, 6 * n * n);
    }

    #[test]
    fn geometry_of_elements() {
        let mesh = HexMesh::with_extent(1, 2.0, Boundary::Wall);
        assert_eq!(mesh.h(), 1.0);
        let e = mesh.elem_id(1, 0, 1);
        assert_eq!(mesh.elem_origin(e), Vec3::new(1.0, 0.0, 1.0));
        assert_eq!(mesh.elem_center(e), Vec3::new(1.5, 0.5, 1.5));
        assert_eq!(mesh.to_physical(e, Vec3::new(-1.0, -1.0, -1.0)), Vec3::new(1.0, 0.0, 1.0));
        assert_eq!(mesh.to_physical(e, Vec3::new(1.0, 1.0, 1.0)), Vec3::new(2.0, 1.0, 2.0));
    }

    #[test]
    fn slices_partition_the_mesh() {
        let mesh = HexMesh::refinement_level(3, Boundary::Periodic);
        let mut seen = vec![false; mesh.num_elements()];
        for s in 0..mesh.num_slices() {
            let mut count = 0;
            for elem in mesh.slice_elements(s) {
                assert_eq!(mesh.slice_of(elem), s);
                assert!(!seen[elem.index()]);
                seen[elem.index()] = true;
                count += 1;
            }
            assert_eq!(count, mesh.elements_per_slice());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn y_neighbors_stay_within_adjacent_slices() {
        // The batching scheme relies on x/z flux being intra-slice and
        // y flux touching only slice ± 1.
        let mesh = HexMesh::refinement_level(3, Boundary::Wall);
        for elem in mesh.elements() {
            let s = mesh.slice_of(elem);
            for face in [Face::XMinus, Face::XPlus, Face::ZMinus, Face::ZPlus] {
                if let Neighbor::Element(nb) = mesh.neighbor(elem, face) {
                    assert_eq!(mesh.slice_of(nb), s);
                }
            }
            if let Neighbor::Element(nb) = mesh.neighbor(elem, Face::YPlus) {
                assert_eq!(mesh.slice_of(nb), s + 1);
            }
            if let Neighbor::Element(nb) = mesh.neighbor(elem, Face::YMinus) {
                assert_eq!(mesh.slice_of(nb), s - 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "extent must be positive")]
    fn rejects_nonpositive_extent() {
        let _ = HexMesh::with_extent(2, 0.0, Boundary::Wall);
    }
}
