//! Multi-chip domain decomposition: contiguous y-slice shards.
//!
//! The paper evaluates single chips and leaves "larger or smaller problem
//! sizes" (§6) as the open scaling axis. The cluster runtime closes it by
//! splitting the mesh into per-chip shards. The decomposition mirrors the
//! batching order of §6.1: whole y-slices, contiguous, so x/z fluxes stay
//! shard-local and only the two y-faces of each shard cross a chip
//! boundary.
//!
//! A [`SlicePartition`] records, per shard:
//!
//! * the **resident** elements (owned and advanced by that shard's chip),
//! * the **halo face table** — every face whose owner is resident but
//!   whose neighbor lives on another shard (the traffic that must cross
//!   the inter-chip link before each flux evaluation),
//! * the **ghost** elements — the de-duplicated remote neighbors, i.e.
//!   the receive set of the halo exchange.
//!
//! On a [`Boundary::Periodic`] mesh the first and last shards are
//! neighbors through the wrap; on a [`Boundary::Wall`] mesh the outer
//! faces have no neighbor and produce no halo entries (the wall ghost is
//! synthesized locally by the flux kernels).

use crate::face::{Face, Neighbor};
use crate::hexmesh::HexMesh;
use crate::ElemId;

/// One face of the halo: `owner` is resident in the shard holding this
/// table, `neighbor` is resident in `neighbor_shard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloFace {
    /// The resident element whose flux needs remote data.
    pub owner: ElemId,
    /// The face of `owner` that crosses the shard boundary.
    pub face: Face,
    /// The remote element on the other side of the face.
    pub neighbor: ElemId,
    /// The shard that owns `neighbor`.
    pub neighbor_shard: usize,
}

/// One chip's share of the mesh.
#[derive(Debug, Clone)]
pub struct Shard {
    /// This shard's index in the partition.
    pub index: usize,
    /// Contiguous range of y-slices `[slice_begin, slice_end)`.
    pub slice_begin: usize,
    /// One past the last owned y-slice.
    pub slice_end: usize,
    /// Elements owned by this shard, in ascending id order.
    pub elements: Vec<ElemId>,
    /// Every resident face whose neighbor is on another shard.
    pub halo: Vec<HaloFace>,
    /// De-duplicated remote neighbors (the receive set), ascending ids.
    pub ghosts: Vec<ElemId>,
}

impl Shard {
    /// Residents that appear as some other shard's ghost — the send set
    /// of the halo exchange, ascending ids.
    pub fn boundary_elements(&self, partition: &SlicePartition) -> Vec<ElemId> {
        let mut out: Vec<ElemId> = Vec::new();
        for other in partition.shards() {
            if other.index == self.index {
                continue;
            }
            out.extend(other.ghosts.iter().filter(|g| partition.shard_of(**g) == self.index));
        }
        out.sort_by_key(|e| e.index());
        out.dedup();
        out
    }
}

/// A partition of a [`HexMesh`] into contiguous y-slice shards.
#[derive(Debug, Clone)]
pub struct SlicePartition {
    num_elements: usize,
    shards: Vec<Shard>,
    shard_of: Vec<usize>,
}

impl SlicePartition {
    /// Splits `mesh` into `num_shards` contiguous groups of y-slices.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero or does not divide the slice count
    /// (`2^level`), matching the batching constraint of §6.1.
    pub fn new(mesh: &HexMesh, num_shards: usize) -> Self {
        assert!(num_shards > 0, "at least one shard required");
        let slices = mesh.num_slices();
        assert!(
            num_shards <= slices && slices.is_multiple_of(num_shards),
            "{num_shards} shards must evenly divide {slices} y-slices"
        );
        let per_shard = slices / num_shards;
        let mut shard_of = vec![0usize; mesh.num_elements()];
        let mut shards = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let slice_begin = s * per_shard;
            let slice_end = slice_begin + per_shard;
            let mut elements: Vec<ElemId> =
                Vec::with_capacity(per_shard * mesh.elements_per_slice());
            for slice in slice_begin..slice_end {
                elements.extend(mesh.slice_elements(slice));
            }
            elements.sort_by_key(|e| e.index());
            for e in &elements {
                shard_of[e.index()] = s;
            }
            shards.push(Shard {
                index: s,
                slice_begin,
                slice_end,
                elements,
                halo: Vec::new(),
                ghosts: Vec::new(),
            });
        }

        // Halo face tables: walk every resident face and keep the ones
        // whose neighbor lives elsewhere. Only the two y-faces can cross
        // a slice-group boundary, but scanning all six keeps the table
        // correct by construction rather than by argument.
        for (s, shard) in shards.iter_mut().enumerate() {
            let mut halo = Vec::new();
            for &e in &shard.elements {
                for face in Face::ALL {
                    if let Neighbor::Element(nb) = mesh.neighbor(e, face) {
                        let owner_shard = shard_of[nb.index()];
                        if owner_shard != s {
                            halo.push(HaloFace {
                                owner: e,
                                face,
                                neighbor: nb,
                                neighbor_shard: owner_shard,
                            });
                        }
                    }
                }
            }
            let mut ghosts: Vec<ElemId> = halo.iter().map(|h| h.neighbor).collect();
            ghosts.sort_by_key(|e| e.index());
            ghosts.dedup();
            shard.halo = halo;
            shard.ghosts = ghosts;
        }

        Self { num_elements: mesh.num_elements(), shards, shard_of }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Elements in the partitioned mesh.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard.
    pub fn shard(&self, index: usize) -> &Shard {
        &self.shards[index]
    }

    /// The shard owning an element.
    pub fn shard_of(&self, elem: ElemId) -> usize {
        self.shard_of[elem.index()]
    }

    /// Total halo faces summed over all shards (each inter-shard face
    /// counted once per side).
    pub fn total_halo_faces(&self) -> usize {
        self.shards.iter().map(|s| s.halo.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexmesh::Boundary;

    #[test]
    fn single_shard_has_no_halo() {
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        let p = SlicePartition::new(&mesh, 1);
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.shard(0).elements.len(), mesh.num_elements());
        assert!(p.shard(0).halo.is_empty());
        assert!(p.shard(0).ghosts.is_empty());
    }

    #[test]
    fn periodic_two_shards_exchange_both_boundary_slices() {
        // Two shards on a periodic mesh touch through the seam *and* the
        // wrap: each shard's ghosts are both boundary slices of the other.
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        let p = SlicePartition::new(&mesh, 2);
        let per_slice = mesh.elements_per_slice();
        for s in p.shards() {
            assert_eq!(s.ghosts.len(), 2 * per_slice, "shard {}", s.index);
            assert_eq!(s.halo.len(), 2 * per_slice, "shard {}", s.index);
            for h in &s.halo {
                assert_eq!(h.neighbor_shard, 1 - s.index);
            }
        }
    }

    #[test]
    fn wall_mesh_outer_faces_produce_no_halo() {
        // With wall boundaries there is no wrap: the first and last shard
        // see remote neighbors on one side only.
        let mesh = HexMesh::refinement_level(2, Boundary::Wall);
        let p = SlicePartition::new(&mesh, 4);
        let per_slice = mesh.elements_per_slice();
        assert_eq!(p.shard(0).ghosts.len(), per_slice);
        assert_eq!(p.shard(3).ghosts.len(), per_slice);
        assert_eq!(p.shard(1).ghosts.len(), 2 * per_slice);
        assert_eq!(p.shard(2).ghosts.len(), 2 * per_slice);
    }

    #[test]
    fn send_set_mirrors_receive_set() {
        let mesh = HexMesh::refinement_level(3, Boundary::Periodic);
        let p = SlicePartition::new(&mesh, 4);
        for s in p.shards() {
            let sends = s.boundary_elements(&p);
            // Every sent element is resident here and appears as a ghost
            // of at least one other shard.
            for e in &sends {
                assert_eq!(p.shard_of(*e), s.index);
                assert!(p.shards().iter().any(|o| o.index != s.index && o.ghosts.contains(e)));
            }
            // Symmetric slicing: the send set is the two boundary slices.
            assert_eq!(sends.len(), 2 * mesh.elements_per_slice());
        }
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn rejects_non_dividing_shard_count() {
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        let _ = SlicePartition::new(&mesh, 3);
    }
}
