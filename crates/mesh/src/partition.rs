//! Multi-chip domain decomposition: contiguous y-slice shards.
//!
//! The paper evaluates single chips and leaves "larger or smaller problem
//! sizes" (§6) as the open scaling axis. The cluster runtime closes it by
//! splitting the mesh into per-chip shards. The decomposition mirrors the
//! batching order of §6.1: whole y-slices, contiguous, so x/z fluxes stay
//! shard-local and only the two y-faces of each shard cross a chip
//! boundary.
//!
//! A [`SlicePartition`] records, per shard:
//!
//! * the **resident** elements (owned and advanced by that shard's chip),
//! * the **halo face table** — every face whose owner is resident but
//!   whose neighbor lives on another shard (the traffic that must cross
//!   the inter-chip link before each flux evaluation),
//! * the **ghost** elements — the de-duplicated remote neighbors, i.e.
//!   the receive set of the halo exchange.
//!
//! On a [`Boundary::Periodic`] mesh the first and last shards are
//! neighbors through the wrap; on a [`Boundary::Wall`] mesh the outer
//! faces have no neighbor and produce no halo entries (the wall ghost is
//! synthesized locally by the flux kernels).

use crate::face::{Face, Neighbor};
use crate::hexmesh::HexMesh;
use crate::ElemId;

/// One face of the halo: `owner` is resident in the shard holding this
/// table, `neighbor` is resident in `neighbor_shard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloFace {
    /// The resident element whose flux needs remote data.
    pub owner: ElemId,
    /// The face of `owner` that crosses the shard boundary.
    pub face: Face,
    /// The remote element on the other side of the face.
    pub neighbor: ElemId,
    /// The shard that owns `neighbor`.
    pub neighbor_shard: usize,
}

/// One chip's share of the mesh.
#[derive(Debug, Clone)]
pub struct Shard {
    /// This shard's index in the partition.
    pub index: usize,
    /// Contiguous range of y-slices `[slice_begin, slice_end)`.
    pub slice_begin: usize,
    /// One past the last owned y-slice.
    pub slice_end: usize,
    /// Elements owned by this shard, in ascending id order.
    pub elements: Vec<ElemId>,
    /// Every resident face whose neighbor is on another shard.
    pub halo: Vec<HaloFace>,
    /// De-duplicated remote neighbors (the receive set), ascending ids.
    pub ghosts: Vec<ElemId>,
}

impl Shard {
    /// Residents that appear as some other shard's ghost — the send set
    /// of the halo exchange, ascending ids.
    pub fn boundary_elements(&self, partition: &SlicePartition) -> Vec<ElemId> {
        let mut out: Vec<ElemId> = Vec::new();
        for other in partition.shards() {
            if other.index == self.index {
                continue;
            }
            out.extend(other.ghosts.iter().filter(|g| partition.shard_of(**g) == self.index));
        }
        out.sort_by_key(|e| e.index());
        out.dedup();
        out
    }
}

/// A partition of a [`HexMesh`] into contiguous y-slice shards.
#[derive(Debug, Clone)]
pub struct SlicePartition {
    num_elements: usize,
    shards: Vec<Shard>,
    shard_of: Vec<usize>,
}

impl SlicePartition {
    /// Splits `mesh` into `num_shards` contiguous groups of y-slices.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero or does not divide the slice count
    /// (`2^level`), matching the batching constraint of §6.1.
    pub fn new(mesh: &HexMesh, num_shards: usize) -> Self {
        assert!(num_shards > 0, "at least one shard required");
        let slices = mesh.num_slices();
        assert!(
            num_shards <= slices && slices.is_multiple_of(num_shards),
            "{num_shards} shards must evenly divide {slices} y-slices"
        );
        Self::from_slice_counts(mesh, &vec![slices / num_shards; num_shards])
    }

    /// Splits `mesh` into one shard per weight, dealing the `2^level`
    /// y-slices proportionally to `weights` (largest-remainder rounding,
    /// every shard gets at least one slice). Weighting by
    /// `ChipCapacity::num_blocks()` lets a heterogeneous cluster give the
    /// big chip proportionally more resident elements instead of leaving
    /// its extra crossbar blocks idle.
    ///
    /// Equal weights with a dividing shard count reduce exactly to
    /// [`SlicePartition::new`].
    ///
    /// # Panics
    /// Panics if `weights` is empty, any weight is zero, or there are more
    /// shards than slices.
    pub fn new_weighted(mesh: &HexMesh, weights: &[u64]) -> Self {
        let num_shards = weights.len();
        assert!(num_shards > 0, "at least one shard required");
        assert!(weights.iter().all(|&w| w > 0), "shard weights must be positive: {weights:?}");
        let slices = mesh.num_slices();
        assert!(
            num_shards <= slices,
            "{num_shards} shards need at least as many y-slices, got {slices}"
        );
        // Every shard starts with one slice; the rest are dealt by largest
        // remainder of `extra * w / W` (ties broken toward lower index), so
        // counts are deterministic and sum exactly to `slices`.
        let total_weight: u128 = weights.iter().map(|&w| u128::from(w)).sum();
        let extra = (slices - num_shards) as u128;
        let mut counts: Vec<usize> = Vec::with_capacity(num_shards);
        let mut remainders: Vec<(usize, u128)> = Vec::with_capacity(num_shards);
        for (i, &w) in weights.iter().enumerate() {
            let scaled = extra * u128::from(w);
            counts.push(1 + (scaled / total_weight) as usize);
            remainders.push((i, scaled % total_weight));
        }
        let dealt: usize = counts.iter().sum();
        remainders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(shard, _) in remainders.iter().take(slices - dealt) {
            counts[shard] += 1;
        }
        debug_assert_eq!(counts.iter().sum::<usize>(), slices);
        Self::from_slice_counts(mesh, &counts)
    }

    /// Builds the shard tables for an explicit per-shard slice count
    /// (already validated to sum to `mesh.num_slices()`, every entry ≥ 1).
    fn from_slice_counts(mesh: &HexMesh, counts: &[usize]) -> Self {
        let num_shards = counts.len();
        let mut shard_of = vec![0usize; mesh.num_elements()];
        let mut shards = Vec::with_capacity(num_shards);
        let mut next_slice = 0usize;
        for (s, &count) in counts.iter().enumerate() {
            let slice_begin = next_slice;
            let slice_end = slice_begin + count;
            next_slice = slice_end;
            let mut elements: Vec<ElemId> = Vec::with_capacity(count * mesh.elements_per_slice());
            for slice in slice_begin..slice_end {
                elements.extend(mesh.slice_elements(slice));
            }
            elements.sort_by_key(|e| e.index());
            for e in &elements {
                shard_of[e.index()] = s;
            }
            shards.push(Shard {
                index: s,
                slice_begin,
                slice_end,
                elements,
                halo: Vec::new(),
                ghosts: Vec::new(),
            });
        }

        // Halo face tables: walk every resident face and keep the ones
        // whose neighbor lives elsewhere. Only the two y-faces can cross
        // a slice-group boundary, but scanning all six keeps the table
        // correct by construction rather than by argument.
        for (s, shard) in shards.iter_mut().enumerate() {
            let mut halo = Vec::new();
            for &e in &shard.elements {
                for face in Face::ALL {
                    if let Neighbor::Element(nb) = mesh.neighbor(e, face) {
                        let owner_shard = shard_of[nb.index()];
                        if owner_shard != s {
                            halo.push(HaloFace {
                                owner: e,
                                face,
                                neighbor: nb,
                                neighbor_shard: owner_shard,
                            });
                        }
                    }
                }
            }
            let mut ghosts: Vec<ElemId> = halo.iter().map(|h| h.neighbor).collect();
            ghosts.sort_by_key(|e| e.index());
            ghosts.dedup();
            shard.halo = halo;
            shard.ghosts = ghosts;
        }

        Self { num_elements: mesh.num_elements(), shards, shard_of }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Elements in the partitioned mesh.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard.
    pub fn shard(&self, index: usize) -> &Shard {
        &self.shards[index]
    }

    /// The shard owning an element.
    pub fn shard_of(&self, elem: ElemId) -> usize {
        self.shard_of[elem.index()]
    }

    /// Total halo faces summed over all shards (each inter-shard face
    /// counted once per side).
    pub fn total_halo_faces(&self) -> usize {
        self.shards.iter().map(|s| s.halo.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexmesh::Boundary;

    #[test]
    fn single_shard_has_no_halo() {
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        let p = SlicePartition::new(&mesh, 1);
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.shard(0).elements.len(), mesh.num_elements());
        assert!(p.shard(0).halo.is_empty());
        assert!(p.shard(0).ghosts.is_empty());
    }

    #[test]
    fn periodic_two_shards_exchange_both_boundary_slices() {
        // Two shards on a periodic mesh touch through the seam *and* the
        // wrap: each shard's ghosts are both boundary slices of the other.
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        let p = SlicePartition::new(&mesh, 2);
        let per_slice = mesh.elements_per_slice();
        for s in p.shards() {
            assert_eq!(s.ghosts.len(), 2 * per_slice, "shard {}", s.index);
            assert_eq!(s.halo.len(), 2 * per_slice, "shard {}", s.index);
            for h in &s.halo {
                assert_eq!(h.neighbor_shard, 1 - s.index);
            }
        }
    }

    #[test]
    fn wall_mesh_outer_faces_produce_no_halo() {
        // With wall boundaries there is no wrap: the first and last shard
        // see remote neighbors on one side only.
        let mesh = HexMesh::refinement_level(2, Boundary::Wall);
        let p = SlicePartition::new(&mesh, 4);
        let per_slice = mesh.elements_per_slice();
        assert_eq!(p.shard(0).ghosts.len(), per_slice);
        assert_eq!(p.shard(3).ghosts.len(), per_slice);
        assert_eq!(p.shard(1).ghosts.len(), 2 * per_slice);
        assert_eq!(p.shard(2).ghosts.len(), 2 * per_slice);
    }

    #[test]
    fn send_set_mirrors_receive_set() {
        let mesh = HexMesh::refinement_level(3, Boundary::Periodic);
        let p = SlicePartition::new(&mesh, 4);
        for s in p.shards() {
            let sends = s.boundary_elements(&p);
            // Every sent element is resident here and appears as a ghost
            // of at least one other shard.
            for e in &sends {
                assert_eq!(p.shard_of(*e), s.index);
                assert!(p.shards().iter().any(|o| o.index != s.index && o.ghosts.contains(e)));
            }
            // Symmetric slicing: the send set is the two boundary slices.
            assert_eq!(sends.len(), 2 * mesh.elements_per_slice());
        }
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn rejects_non_dividing_shard_count() {
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        let _ = SlicePartition::new(&mesh, 3);
    }

    #[test]
    fn equal_weights_reduce_to_the_even_deal() {
        let mesh = HexMesh::refinement_level(3, Boundary::Periodic);
        let even = SlicePartition::new(&mesh, 4);
        let weighted = SlicePartition::new_weighted(&mesh, &[7, 7, 7, 7]);
        for (a, b) in even.shards().iter().zip(weighted.shards()) {
            assert_eq!((a.slice_begin, a.slice_end), (b.slice_begin, b.slice_end));
            assert_eq!(a.elements, b.elements);
        }
    }

    #[test]
    fn capacity_weights_deal_proportional_slices() {
        // Level 3 = 8 slices over a 2 GB (16384 blocks) + 8 GB (65536
        // blocks) pair: quotas 8·(1/5)=1.6 and 8·(4/5)=6.4 round to [2, 6]
        // by largest remainder with the one-slice floor.
        let mesh = HexMesh::refinement_level(3, Boundary::Periodic);
        let p = SlicePartition::new_weighted(&mesh, &[16384, 65536]);
        assert_eq!(p.shard(0).slice_end - p.shard(0).slice_begin, 2);
        assert_eq!(p.shard(1).slice_end - p.shard(1).slice_begin, 6);
        // Slices stay contiguous and every element is owned exactly once.
        assert_eq!(p.shard(0).slice_begin, 0);
        assert_eq!(p.shard(1).slice_begin, p.shard(0).slice_end);
        let owned: usize = p.shards().iter().map(|s| s.elements.len()).sum();
        assert_eq!(owned, mesh.num_elements());
    }

    #[test]
    fn extreme_weights_still_give_every_shard_a_slice() {
        let mesh = HexMesh::refinement_level(2, Boundary::Wall);
        let p = SlicePartition::new_weighted(&mesh, &[1, 1_000_000, 1]);
        for s in p.shards() {
            assert!(s.slice_end > s.slice_begin, "shard {} got no slices", s.index);
        }
        assert_eq!(p.shard(1).slice_end - p.shard(1).slice_begin, 2);
    }

    #[test]
    fn weighted_non_dividing_counts_are_allowed() {
        // 3 shards over 8 slices is rejected by `new` but fine weighted:
        // equal weights give [3, 3, 2] (largest remainder, low index wins).
        let mesh = HexMesh::refinement_level(3, Boundary::Periodic);
        let p = SlicePartition::new_weighted(&mesh, &[1, 1, 1]);
        let counts: Vec<usize> = p.shards().iter().map(|s| s.slice_end - s.slice_begin).collect();
        assert_eq!(counts, vec![3, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_rejects_zero_weight() {
        let mesh = HexMesh::refinement_level(2, Boundary::Periodic);
        let _ = SlicePartition::new_weighted(&mesh, &[1, 0]);
    }
}
