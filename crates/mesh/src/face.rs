//! Element faces and neighbor results.

use wavesim_numerics::tensor::Axis;
use wavesim_numerics::Vec3;

use crate::hexmesh::ElemId;

/// One of the six faces of a hexahedral element, identified by the outward
/// normal direction. The paper enumerates these as "3 axes, x, y, and z, and
/// 2 normal vectors, −1 and +1" (§6.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    XMinus,
    XPlus,
    YMinus,
    YPlus,
    ZMinus,
    ZPlus,
}

impl Face {
    /// All six faces, minus before plus, x then y then z.
    pub const ALL: [Face; 6] =
        [Face::XMinus, Face::XPlus, Face::YMinus, Face::YPlus, Face::ZMinus, Face::ZPlus];

    /// The axis this face is normal to.
    #[inline]
    pub fn axis(self) -> Axis {
        match self {
            Face::XMinus | Face::XPlus => Axis::X,
            Face::YMinus | Face::YPlus => Axis::Y,
            Face::ZMinus | Face::ZPlus => Axis::Z,
        }
    }

    /// True for the `+1` normal direction.
    #[inline]
    pub fn is_plus(self) -> bool {
        matches!(self, Face::XPlus | Face::YPlus | Face::ZPlus)
    }

    /// Outward unit normal of this face.
    #[inline]
    pub fn normal(self) -> Vec3 {
        let sign = if self.is_plus() { 1.0 } else { -1.0 };
        Vec3::unit(self.axis().index()) * sign
    }

    /// The face that touches this one on the neighboring element.
    #[inline]
    pub fn opposite(self) -> Face {
        match self {
            Face::XMinus => Face::XPlus,
            Face::XPlus => Face::XMinus,
            Face::YMinus => Face::YPlus,
            Face::YPlus => Face::YMinus,
            Face::ZMinus => Face::ZPlus,
            Face::ZPlus => Face::ZMinus,
        }
    }

    /// Compact 0..6 code, used for indexing per-face tables.
    #[inline]
    pub fn code(self) -> usize {
        match self {
            Face::XMinus => 0,
            Face::XPlus => 1,
            Face::YMinus => 2,
            Face::YPlus => 3,
            Face::ZMinus => 4,
            Face::ZPlus => 5,
        }
    }

    /// Inverse of [`Face::code`].
    #[inline]
    pub fn from_code(code: usize) -> Face {
        Face::ALL[code]
    }

    /// Builds a face from an axis and a normal sign.
    #[inline]
    pub fn from_axis(axis: Axis, plus: bool) -> Face {
        match (axis, plus) {
            (Axis::X, false) => Face::XMinus,
            (Axis::X, true) => Face::XPlus,
            (Axis::Y, false) => Face::YMinus,
            (Axis::Y, true) => Face::YPlus,
            (Axis::Z, false) => Face::ZMinus,
            (Axis::Z, true) => Face::ZPlus,
        }
    }
}

/// What lies across a face: another element, or the domain boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Neighbor {
    /// A neighboring element (possibly via periodic wrap-around).
    Element(ElemId),
    /// The domain boundary (rigid wall); the solver applies the mirror
    /// condition `v·n = 0` there.
    Boundary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for face in Face::ALL {
            assert_eq!(Face::from_code(face.code()), face);
        }
        for code in 0..6 {
            assert_eq!(Face::from_code(code).code(), code);
        }
    }

    #[test]
    fn opposite_is_involution_and_flips_sign() {
        for face in Face::ALL {
            assert_eq!(face.opposite().opposite(), face);
            assert_eq!(face.opposite().axis(), face.axis());
            assert_ne!(face.opposite().is_plus(), face.is_plus());
        }
    }

    #[test]
    fn normals_are_unit_and_outward() {
        for face in Face::ALL {
            let n = face.normal();
            assert_eq!(n.norm(), 1.0);
            let along = n.component(face.axis().index());
            assert_eq!(along, if face.is_plus() { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn from_axis_matches_axis_and_sign() {
        for face in Face::ALL {
            assert_eq!(Face::from_axis(face.axis(), face.is_plus()), face);
        }
    }
}
