//! Affine-element geometry constants.
//!
//! On a uniform structured mesh every element is an axis-aligned cube of
//! edge `h`, so the reference-to-physical map is affine and the Jacobian
//! constants of the paper's Table 1 reduce to scalars shared by all
//! elements:
//!
//! * `jacobian_det_domain`     = `(h/2)³`   (volume Jacobian determinant),
//! * `jacobian_inverse_domain` = `2/h`      (∂r/∂x, same along each axis),
//! * `jacobian_det_boundary`   = `(h/2)²`   (face Jacobian determinant),
//! * `jacobian_det_w_star`     = per-node `w_i w_j w_k (h/2)³` (the
//!   precombined quadrature constant the Volume timeline of Fig. 5
//!   computes first).

use wavesim_numerics::gll::GllRule;
use wavesim_numerics::tensor::node_index;

/// Geometry constants for the affine elements of a [`crate::HexMesh`].
#[derive(Debug, Clone, PartialEq)]
pub struct ElementGeometry {
    h: f64,
    nodes_per_axis: usize,
    jacobian_det_domain: f64,
    jacobian_inverse_domain: f64,
    jacobian_det_boundary: f64,
    jacobian_det_w_star: Vec<f64>,
}

impl ElementGeometry {
    /// Builds the constants for elements of edge `h` with `rule.len()` GLL
    /// nodes per axis.
    pub fn new(h: f64, rule: &GllRule) -> Self {
        assert!(h > 0.0, "element edge must be positive");
        let n = rule.len();
        let half = 0.5 * h;
        let det = half * half * half;
        let w = rule.weights();
        let mut jdws = vec![0.0; n * n * n];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    jdws[node_index(n, i, j, k)] = w[i] * w[j] * w[k] * det;
                }
            }
        }
        Self {
            h,
            nodes_per_axis: n,
            jacobian_det_domain: det,
            jacobian_inverse_domain: 1.0 / half,
            jacobian_det_boundary: half * half,
            jacobian_det_w_star: jdws,
        }
    }

    /// Element edge length.
    #[inline]
    pub fn h(&self) -> f64 {
        self.h
    }

    /// GLL nodes per axis.
    #[inline]
    pub fn nodes_per_axis(&self) -> usize {
        self.nodes_per_axis
    }

    /// Nodes per element, `nodes_per_axis³`.
    #[inline]
    pub fn nodes_per_element(&self) -> usize {
        let n = self.nodes_per_axis;
        n * n * n
    }

    /// `jacobian_det_domain` of Table 1.
    #[inline]
    pub fn jacobian_det_domain(&self) -> f64 {
        self.jacobian_det_domain
    }

    /// `jacobian_inverse_domain` of Table 1: the factor turning a
    /// reference-coordinate derivative into a physical derivative.
    #[inline]
    pub fn jacobian_inverse_domain(&self) -> f64 {
        self.jacobian_inverse_domain
    }

    /// `jacobian_det_boundary` of Table 1.
    #[inline]
    pub fn jacobian_det_boundary(&self) -> f64 {
        self.jacobian_det_boundary
    }

    /// Per-node `jacobian_det_w_star` table, indexed by node index.
    #[inline]
    pub fn jacobian_det_w_star(&self) -> &[f64] {
        &self.jacobian_det_w_star
    }

    /// The lift constant applied at a face node during Flux: on GLL
    /// collocation, the surface mass over volume mass reduces to
    /// `1 / (w_end · h/2)` where `w_end` is the 1-D endpoint weight.
    #[inline]
    pub fn lift_factor(&self, endpoint_weight: f64) -> f64 {
        1.0 / (endpoint_weight * 0.5 * self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn unit_element_constants() {
        let rule = GllRule::new(4);
        let g = ElementGeometry::new(2.0, &rule);
        // h = 2 means the element *is* the reference cube.
        assert_close(g.jacobian_det_domain(), 1.0, 1e-15);
        assert_close(g.jacobian_inverse_domain(), 1.0, 1e-15);
        assert_close(g.jacobian_det_boundary(), 1.0, 1e-15);
    }

    #[test]
    fn scaling_with_h() {
        let rule = GllRule::new(3);
        let g = ElementGeometry::new(0.5, &rule);
        assert_close(g.jacobian_det_domain(), 0.25f64.powi(3), 1e-15);
        assert_close(g.jacobian_inverse_domain(), 4.0, 1e-15);
        assert_close(g.jacobian_det_boundary(), 0.0625, 1e-15);
    }

    #[test]
    fn jacobian_det_w_star_sums_to_volume() {
        // Σ_ijk w_i w_j w_k (h/2)³ = 2³ (h/2)³ = h³, the element volume.
        let rule = GllRule::new(8);
        let h = 0.125;
        let g = ElementGeometry::new(h, &rule);
        let total: f64 = g.jacobian_det_w_star().iter().sum();
        assert_close(total, h * h * h, 1e-12);
        assert_eq!(g.jacobian_det_w_star().len(), 512);
    }

    #[test]
    fn nodes_per_element_matches_paper_element() {
        // The paper's element is 512 nodes = 8³ (Fig. 5 uses a 512-node
        // element on a 1K×1K block).
        let rule = GllRule::new(8);
        let g = ElementGeometry::new(1.0, &rule);
        assert_eq!(g.nodes_per_element(), 512);
    }

    #[test]
    fn lift_factor_definition() {
        let rule = GllRule::new(4);
        let g = ElementGeometry::new(0.5, &rule);
        let w0 = rule.weights()[0];
        assert_close(g.lift_factor(w0), 1.0 / (w0 * 0.25), 1e-12);
    }

    #[test]
    #[should_panic(expected = "edge must be positive")]
    fn rejects_bad_h() {
        let rule = GllRule::new(3);
        let _ = ElementGeometry::new(-1.0, &rule);
    }
}
