//! Property tests for the y-slice partitioner: it must be a *true*
//! partition (every element in exactly one shard) and its halo face
//! tables must cover every inter-shard face exactly once from each side.

use proptest::prelude::*;
use std::collections::HashSet;
use wavesim_mesh::{Boundary, Face, HexMesh, Neighbor, SlicePartition};

/// (level, num_shards, boundary) triples where the shard count divides
/// the slice count.
fn cases() -> impl Strategy<Value = (u32, usize, Boundary)> {
    (1u32..4, 0usize..4, prop_oneof![Just(Boundary::Periodic), Just(Boundary::Wall)]).prop_map(
        |(level, shard_exp, boundary)| {
            let slices = 1usize << level;
            let shards = (1usize << shard_exp).min(slices);
            (level, shards, boundary)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_element_is_in_exactly_one_shard(case in cases()) {
        let (level, shards, boundary) = case;
        let mesh = HexMesh::refinement_level(level, boundary);
        let p = SlicePartition::new(&mesh, shards);
        let mut owner = vec![0usize; mesh.num_elements()];
        for s in p.shards() {
            for e in &s.elements {
                owner[e.index()] += 1;
                prop_assert_eq!(p.shard_of(*e), s.index);
            }
        }
        prop_assert!(owner.iter().all(|&c| c == 1), "element owned by != 1 shard");
    }

    #[test]
    fn halo_tables_cover_each_intershard_face_once_per_side(case in cases()) {
        let (level, shards, boundary) = case;
        let mesh = HexMesh::refinement_level(level, boundary);
        let p = SlicePartition::new(&mesh, shards);

        // Ground truth: enumerate every directed inter-shard face of the
        // mesh independently of the partitioner's own walk.
        let mut expected = HashSet::new();
        for e in mesh.elements() {
            for face in Face::ALL {
                if let Neighbor::Element(nb) = mesh.neighbor(e, face) {
                    if p.shard_of(e) != p.shard_of(nb) {
                        expected.insert((e.index(), face.code(), nb.index()));
                    }
                }
            }
        }

        // The shard tables must list exactly that set, with no duplicates,
        // and each undirected face appears from both sides.
        let mut listed = HashSet::new();
        for s in p.shards() {
            for h in &s.halo {
                prop_assert_eq!(p.shard_of(h.owner), s.index);
                prop_assert_eq!(p.shard_of(h.neighbor), h.neighbor_shard);
                prop_assert!(
                    listed.insert((h.owner.index(), h.face.code(), h.neighbor.index())),
                    "duplicate halo face"
                );
            }
        }
        prop_assert_eq!(&listed, &expected);
        for &(owner, code, neighbor) in &listed {
            let mirrored = (neighbor, Face::from_code(code).opposite().code(), owner);
            prop_assert!(listed.contains(&mirrored), "face listed from one side only");
        }
    }

    #[test]
    fn ghosts_are_exactly_the_remote_halo_neighbors(case in cases()) {
        let (level, shards, boundary) = case;
        let mesh = HexMesh::refinement_level(level, boundary);
        let p = SlicePartition::new(&mesh, shards);
        for s in p.shards() {
            let from_halo: HashSet<usize> = s.halo.iter().map(|h| h.neighbor.index()).collect();
            let ghosts: HashSet<usize> = s.ghosts.iter().map(|g| g.index()).collect();
            prop_assert_eq!(&ghosts, &from_halo);
            for g in &s.ghosts {
                prop_assert!(p.shard_of(*g) != s.index, "ghost is resident");
            }
        }
    }
}
